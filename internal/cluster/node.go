package cluster

import (
	"fmt"
	"time"

	"itdos/internal/cdr"
	"itdos/internal/obs"
	"itdos/internal/orb"
	"itdos/internal/replica"
	"itdos/internal/transport/tcp"
)

// NodeOptions tune one process's build.
type NodeOptions struct {
	// Listen overrides the node's spec listen address (the in-process
	// harness passes "127.0.0.1:0").
	Listen string
	// Metrics receives both transport and system instrumentation; nil
	// builds a fresh registry.
	Metrics *obs.Registry
	// Servant overrides the domain servant factory (default CalcServant
	// on every element). Used by the equivalence test to plant liars.
	Servant func(member int) orb.Servant
	// Tweak, if non-nil, edits the SystemConfig before the system is
	// built (latency knobs are meaningless here; protocol options are
	// not).
	Tweak func(*replica.SystemConfig)
}

// Node is one process of a cluster: the full system built deterministically
// from the spec, wired onto a TCP transport hosting this process's slice
// of it.
type Node struct {
	Spec    *Spec
	Process string
	Tr      *tcp.Transport
	Sys     *replica.System
	Metrics *obs.Registry
}

// NewNode builds (but does not start) one process of the cluster. The
// returned node's transport is bound — read Tr.Addr(), exchange addresses
// if needed, then Start.
func NewNode(spec *Spec, process string, opts NodeOptions) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	found := false
	listen := opts.Listen
	for _, nd := range spec.Nodes {
		if nd.Name == process {
			found = true
			if listen == "" {
				listen = nd.Listen
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: process %q not in spec", process)
	}
	if listen == "" {
		return nil, fmt.Errorf("cluster: process %q has no listen address", process)
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	tr, err := tcp.New(tcp.Config{
		Process: process,
		Listen:  listen,
		Peers:   spec.Addrs(),
		Hosts:   spec.Hosts(),
		Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}

	servant := opts.Servant
	if servant == nil {
		servant = func(int) orb.Servant { return CalcServant() }
	}
	cfg := replica.SystemConfig{
		Seed:              spec.Seed,
		Transport:         tr,
		DeterministicKeys: true,
		Registry:          CalcRegistry(),
		ConfigSecret:      []byte(spec.Secret),
		GM:                replica.GroupSpec{N: spec.N(), F: spec.F},
		SendTimeout:       spec.SendTimeout(),
		MaxBatch:          spec.MaxBatch,
		BatchWait:         time.Duration(spec.BatchWaitMS) * time.Millisecond,
		Domains: []replica.DomainSpec{{
			Name: spec.Domain, N: spec.N(), F: spec.F,
			Setup: func(member int, adapter *orb.Adapter) error {
				return adapter.Register(CalcKey, CalcIface, servant(member))
			},
		}},
		Metrics: metrics,
	}
	for _, name := range spec.Clients() {
		cfg.Clients = append(cfg.Clients, replica.ClientSpec{Name: name})
	}
	if opts.Tweak != nil {
		opts.Tweak(&cfg)
	}
	// Building the system registers nodes and groups on the transport;
	// before Start the transport is single-threaded, so this is safe.
	sys, err := replica.NewSystem(cfg)
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &Node{Spec: spec, Process: process, Tr: tr, Sys: sys, Metrics: metrics}, nil
}

// Start launches the transport (the system is passive until traffic
// arrives).
func (n *Node) Start() error { return n.Tr.Start() }

// Close stops the transport and joins the system's ORB goroutines.
func (n *Node) Close() {
	n.Tr.Close()
	n.Sys.Close()
}

// Call drives one synchronous invocation through a hosted client from an
// external goroutine, with a wall-clock timeout. The invocation is posted
// to the transport loop; the client's coroutine discipline does the rest.
func (n *Node) Call(client string, ref orb.ObjectRef, op string, args []cdr.Value, timeout time.Duration) ([]cdr.Value, error) {
	c := n.Sys.Client(client)
	if c == nil {
		return nil, fmt.Errorf("cluster: no client %q on process %q", client, n.Process)
	}
	type result struct {
		vals []cdr.Value
		err  error
	}
	ch := make(chan result, 1)
	n.Tr.Post(func() {
		var vals []cdr.Value
		c.GoNotify(func() error {
			var err error
			vals, err = c.Call(ref, op, args)
			return err
		}, func(err error) {
			ch <- result{vals: vals, err: err}
		})
	})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.vals, r.err
	case <-timer.C:
		return nil, fmt.Errorf("cluster: %s.%s on %s timed out after %v", ref.Domain, op, client, timeout)
	}
}

// InProcCluster is the loopback harness: every node of the spec built and
// started inside one OS process, listening on kernel-assigned ports. Used
// by the equivalence test and the W1 benchmark.
type InProcCluster struct {
	Nodes map[string]*Node
}

// StartInProc builds and starts all nodes of spec over loopback. optsFor
// may be nil; otherwise it supplies per-process options (Listen is always
// overridden to 127.0.0.1:0).
func StartInProc(spec *Spec, optsFor func(process string) NodeOptions) (*InProcCluster, error) {
	cl := &InProcCluster{Nodes: make(map[string]*Node, len(spec.Nodes))}
	addrs := make(map[string]string, len(spec.Nodes))
	// Two-phase startup: bind every listener on port 0 first, then
	// exchange real addresses, then start.
	for _, nd := range spec.Nodes {
		opts := NodeOptions{}
		if optsFor != nil {
			opts = optsFor(nd.Name)
		}
		opts.Listen = "127.0.0.1:0"
		node, err := NewNode(spec, nd.Name, opts)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Nodes[nd.Name] = node
		addrs[nd.Name] = node.Tr.Addr()
	}
	for _, node := range cl.Nodes {
		node.Tr.SetPeers(addrs)
	}
	for _, node := range cl.Nodes {
		if err := node.Start(); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close shuts every node down.
func (c *InProcCluster) Close() {
	for _, n := range c.Nodes {
		n.Close()
	}
}
