// Package cluster turns one SystemConfig into a multi-process deployment
// over the TCP transport: a Spec assigns replica and client identities to
// named processes, and NewNode builds one process's view — the full
// system wired onto a tcp.Transport that suppresses everything the
// process does not host. cmd/itdos-cluster runs one Node per OS process;
// cmd/itdos-load drives calls through a client-hosting Node; the
// equivalence test runs all Nodes in one process over loopback and pins
// their decisions against the netsim twin.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"itdos/internal/cdr"
	"itdos/internal/idl"
	"itdos/internal/orb"
	"itdos/internal/quorum"
	"itdos/internal/replica"
)

// NodeSpec names one process of the cluster. The first quorum.N(F) nodes
// (in slice order) host Group Manager element i and domain element i;
// any node may additionally host singleton clients.
type NodeSpec struct {
	// Name is the process name (also its identity routing key).
	Name string `json:"name"`
	// Listen is the node's TCP listen address. Empty with AutoPorts
	// clusters (the in-process harness binds port 0 and exchanges real
	// addresses before starting).
	Listen string `json:"listen,omitempty"`
	// Clients are the singleton client names this process hosts.
	Clients []string `json:"clients,omitempty"`
	// Pool additionally hosts this many generated clients named
	// "<name>-c<i>". The load generator drives one open-loop arrival
	// stream across the pool; a large pool is how thousands of concurrent
	// simulated clients share one OS process.
	Pool int `json:"pool,omitempty"`
}

// ClientNames returns every client this node hosts: the explicit names
// plus the generated pool.
func (nd *NodeSpec) ClientNames() []string {
	out := append([]string(nil), nd.Clients...)
	for i := 0; i < nd.Pool; i++ {
		out = append(out, fmt.Sprintf("%s-c%d", nd.Name, i))
	}
	return out
}

// Spec is the node-address configuration file driving cmd/itdos-cluster
// and cmd/itdos-load. Every process of a deployment loads the identical
// spec; deterministic key derivation from Secret makes the independently
// built systems agree on all key material.
type Spec struct {
	// Seed is the deployment seed (netsim twin runs use it as the
	// simulator seed; it also salts nothing else — keys come from Secret).
	Seed int64 `json:"seed"`
	// F is the failure bound; the replica group size is quorum.N(F).
	F int `json:"f"`
	// Domain is the application replication domain name.
	Domain string `json:"domain"`
	// Secret seeds all pre-established keys (SystemConfig.ConfigSecret).
	Secret string `json:"secret"`
	// SendTimeout is the PBFT client retransmission timeout in
	// milliseconds; 0 keeps the library default (tuned for virtual time —
	// real deployments want something larger, e.g. 500).
	SendTimeoutMS int `json:"send_timeout_ms"`
	// MaxBatch is the ordering layer's request batch bound (see
	// pbft.Config.MaxBatch); 0 selects the unbatched protocol. Open-loop
	// load against real sockets is what batching exists for — a live
	// deployment wants something like 16.
	MaxBatch int `json:"max_batch,omitempty"`
	// BatchWaitMS is the primary's batch accumulation window in
	// milliseconds (only used with MaxBatch > 1).
	BatchWaitMS int `json:"batch_wait_ms,omitempty"`
	// Nodes lists the processes. At least quorum.N(F) entries.
	Nodes []NodeSpec `json:"nodes"`
}

// N returns the replica group size for the spec's failure bound.
func (s *Spec) N() int { return quorum.N(s.F) }

// Validate checks the spec's shape.
func (s *Spec) Validate() error {
	if s.Domain == "" {
		return fmt.Errorf("cluster: spec needs a domain name")
	}
	if strings.ContainsAny(s.Domain, "/|") || s.Domain == replica.GMDomainName {
		return fmt.Errorf("cluster: invalid domain name %q", s.Domain)
	}
	if s.F < 1 {
		return fmt.Errorf("cluster: f must be >= 1, got %d", s.F)
	}
	if len(s.Nodes) < s.N() {
		return fmt.Errorf("cluster: %d nodes cannot host %d replicas (f=%d)", len(s.Nodes), s.N(), s.F)
	}
	names := map[string]bool{}
	clients := map[string]bool{}
	for _, nd := range s.Nodes {
		if nd.Name == "" || names[nd.Name] {
			return fmt.Errorf("cluster: missing or duplicate node name %q", nd.Name)
		}
		names[nd.Name] = true
		if nd.Pool < 0 {
			return fmt.Errorf("cluster: node %q has negative client pool %d", nd.Name, nd.Pool)
		}
		for _, c := range nd.ClientNames() {
			if c == "" || clients[c] {
				return fmt.Errorf("cluster: missing or duplicate client name %q", c)
			}
			clients[c] = true
		}
	}
	return nil
}

// Clients returns every client name in the spec, in node order.
func (s *Spec) Clients() []string {
	var out []string
	for _, nd := range s.Nodes {
		out = append(out, nd.ClientNames()...)
	}
	return out
}

// Hosts builds the tcp transport's process → identity-prefix map: node i
// hosts gm/ri and <domain>/ri for i < N, and every node hosts its
// declared clients. Prefixes cover all derived addresses (inboxes,
// per-target sender addresses) by the transport's longest-prefix rule.
func (s *Spec) Hosts() map[string][]string {
	h := make(map[string][]string, len(s.Nodes))
	for i, nd := range s.Nodes {
		prefixes := []string{}
		if i < s.N() {
			prefixes = append(prefixes,
				replica.GMElementIdentity(i),
				replica.ElementIdentity(s.Domain, i))
		}
		prefixes = append(prefixes, nd.ClientNames()...)
		h[nd.Name] = prefixes
	}
	return h
}

// Addrs returns the node name → listen address map from the spec.
func (s *Spec) Addrs() map[string]string {
	m := make(map[string]string, len(s.Nodes))
	for _, nd := range s.Nodes {
		m[nd.Name] = nd.Listen
	}
	return m
}

// SendTimeout returns the spec's PBFT retransmission timeout (0 = library
// default).
func (s *Spec) SendTimeout() time.Duration {
	return time.Duration(s.SendTimeoutMS) * time.Millisecond
}

// ReadSpec loads and validates a spec file.
func ReadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteSpec renders a spec file.
func WriteSpec(path string, s *Spec) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// --- the demo application every cluster tool serves ---

// CalcIface is the demo calculator interface id.
const CalcIface = "IDL:cluster/Calc:1.0"

// CalcKey is the object key the calculator registers under.
const CalcKey = "calc"

// CalcRef returns the object reference for the spec's calculator.
func CalcRef(domain string) orb.ObjectRef {
	return orb.ObjectRef{Domain: domain, ObjectKey: CalcKey, Interface: CalcIface}
}

// CalcRegistry builds the shared interface repository for the demo app.
func CalcRegistry() *idl.Registry {
	reg := idl.NewRegistry()
	reg.Register(idl.NewInterface(CalcIface).
		Op("add",
			[]idl.Param{{Name: "a", Type: cdr.Double}, {Name: "b", Type: cdr.Double}},
			[]idl.Param{{Name: "sum", Type: cdr.Double}}).
		Op("echo",
			[]idl.Param{{Name: "s", Type: cdr.String}},
			[]idl.Param{{Name: "out", Type: cdr.String}}))
	return reg
}

// CalcServant returns the deterministic demo servant.
func CalcServant() orb.Servant {
	return orb.ServantFunc(func(_ *orb.CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
		switch op {
		case "add":
			return []cdr.Value{args[0].(float64) + args[1].(float64)}, nil
		case "echo":
			return []cdr.Value{args[0]}, nil
		}
		return nil, orb.ErrBadOperation
	})
}
