package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"itdos/internal/cdr"
	"itdos/internal/obs"
)

// LatencyBounds are the wall-clock latency histogram bucket upper bounds,
// in milliseconds, shared by cmd/itdos-load and experiment W1.
var LatencyBounds = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// LoadConfig parameterises one open-loop run against a client-hosting
// node. The generator issues arrivals on a Poisson process at Rate
// regardless of completions (open loop): every arrival is handed to the
// next client of the node's pool round-robin, and a busy client queues the
// call on its logical thread, so queueing delay under overload shows up in
// the measured latency — exactly what an arrival-rate sweep is after.
type LoadConfig struct {
	// Rate is the offered arrival rate, in calls per second.
	Rate float64
	// Total is the number of arrivals to offer.
	Total int
	// Op is the calculator operation to invoke ("add" or "echo").
	Op string
	// Timeout bounds each call's wall-clock completion.
	Timeout time.Duration
	// Seed drives the arrival process RNG.
	Seed int64
	// Hist, when non-nil, receives each completed call's wall-clock
	// latency in milliseconds. Observations are serialised internally (an
	// obs.Registry is not locked).
	Hist *obs.Histogram
	// Warmup, when set, issues one unmeasured call per client first, so
	// the measured window sees warm Group Manager connections (connection
	// establishment amortisation is C5's claim; a latency sweep should
	// not re-measure it on every client's first call).
	Warmup bool
}

// LoadResult summarises one open-loop run.
type LoadResult struct {
	Offered   int
	Completed int
	// Errors counts calls that failed or timed out, and replies whose
	// decided value was wrong (the voter let a bad answer through).
	Errors int
	// FirstError is a sample failure for diagnostics.
	FirstError string
	// Elapsed is the wall-clock span from first arrival to last completion.
	Elapsed time.Duration
}

// Throughput returns the achieved completion rate in calls per second.
func (r *LoadResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// LocalClients returns the client names this node's process hosts.
func (n *Node) LocalClients() []string {
	for _, nd := range n.Spec.Nodes {
		if nd.Name == n.Process {
			return nd.ClientNames()
		}
	}
	return nil
}

// RunLoad drives one open-loop workload through node's hosted clients and
// blocks until every offered call completed or timed out.
func (n *Node) RunLoad(cfg LoadConfig) (*LoadResult, error) {
	clients := n.LocalClients()
	if len(clients) == 0 {
		return nil, fmt.Errorf("cluster: process %q hosts no clients", n.Process)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("cluster: arrival rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Total <= 0 {
		return nil, fmt.Errorf("cluster: total arrivals must be positive, got %d", cfg.Total)
	}
	if cfg.Op == "" {
		cfg.Op = "add"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	ref := CalcRef(n.Spec.Domain)
	rng := rand.New(rand.NewSource(cfg.Seed))

	if cfg.Warmup {
		var wwg sync.WaitGroup
		for _, client := range clients {
			wwg.Add(1)
			go func(client string) {
				defer wwg.Done()
				args, _ := loadCall(cfg.Op, 0)
				_, _ = n.Call(client, ref, cfg.Op, args, cfg.Timeout)
			}(client)
		}
		wwg.Wait()
	}

	res := &LoadResult{Offered: cfg.Total}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for i := 0; i < cfg.Total; i++ {
		// Poisson arrivals: exponential inter-arrival gaps at rate λ.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		client := clients[i%len(clients)]
		wg.Add(1)
		go func(i int, client string) {
			defer wg.Done()
			args, check := loadCall(cfg.Op, i)
			t0 := time.Now()
			vals, err := n.Call(client, ref, cfg.Op, args, cfg.Timeout)
			lat := time.Since(t0)
			if err == nil {
				err = check(vals)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.Errors++
				if res.FirstError == "" {
					res.FirstError = fmt.Sprintf("%s on %s: %v", cfg.Op, client, err)
				}
				return
			}
			res.Completed++
			cfg.Hist.Observe(float64(lat.Microseconds()) / 1000)
		}(i, client)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// loadCall builds the i-th call's arguments and its reply validator: the
// generator checks decided values, so a voter that lets a wrong answer
// through counts as an error, not a completion.
func loadCall(op string, i int) ([]cdr.Value, func([]cdr.Value) error) {
	switch op {
	case "echo":
		want := fmt.Sprintf("load-%d", i)
		return []cdr.Value{want}, func(vals []cdr.Value) error {
			if len(vals) != 1 || vals[0] != cdr.Value(want) {
				return fmt.Errorf("echo decided %v, want %q", vals, want)
			}
			return nil
		}
	default: // add
		a, b := float64(i), float64(2*i+1)
		return []cdr.Value{a, b}, func(vals []cdr.Value) error {
			if len(vals) != 1 || vals[0] != cdr.Value(a+b) {
				return fmt.Errorf("add decided %v, want %g", vals, a+b)
			}
			return nil
		}
	}
}
