package cluster

import (
	"fmt"
	"testing"
	"time"

	"itdos/internal/cdr"
	"itdos/internal/fault"
	"itdos/internal/orb"
	"itdos/internal/replica"
)

const eqSeed = 20020623 // the paper's conference date; any fixed seed works

// eqServant plants the F1 liar on element 2: it answers 666 to everything,
// so every decided reply also pins that the voter masked it identically on
// both transports.
func eqServant(member int) orb.Servant {
	if member == 2 {
		return fault.LyingServant(cdr.Value(666.0))
	}
	return CalcServant()
}

// eqCalls is the seeded F1-style scenario: a deterministic mix of ordered
// arithmetic and string echoes.
type eqCall struct {
	op   string
	args []cdr.Value
}

func eqCalls() []eqCall {
	calls := []eqCall{{op: "add", args: []cdr.Value{20.0, 22.0}}}
	for i := 0; i < 8; i++ {
		calls = append(calls,
			eqCall{op: "add", args: []cdr.Value{float64(i), float64(2 * i)}},
			eqCall{op: "echo", args: []cdr.Value{fmt.Sprintf("seeded-%d", i)}})
	}
	return calls
}

// canonical renders decided reply values transport-independently: exact
// value bytes, no timing. Wall-clock anything stays out of the comparison.
func canonical(t *testing.T, vals []cdr.Value) string {
	t.Helper()
	out := ""
	for _, v := range vals {
		tc := cdr.Double
		if _, ok := v.(string); ok {
			tc = cdr.String
		}
		b, err := cdr.CanonicalMarshal(tc, v)
		if err != nil {
			t.Fatalf("canonical marshal: %v", err)
		}
		out += fmt.Sprintf("%x;", b)
	}
	return out
}

// runNetsim executes the scenario on the deterministic twin.
func runNetsim(t *testing.T) []string {
	t.Helper()
	spec := eqSpec()
	cfg := replica.SystemConfig{
		Seed:              spec.Seed,
		DeterministicKeys: true,
		Registry:          CalcRegistry(),
		ConfigSecret:      []byte(spec.Secret),
		GM:                replica.GroupSpec{N: spec.N(), F: spec.F},
		Domains: []replica.DomainSpec{{
			Name: spec.Domain, N: spec.N(), F: spec.F,
			Setup: func(member int, adapter *orb.Adapter) error {
				return adapter.Register(CalcKey, CalcIface, eqServant(member))
			},
		}},
		Clients: []replica.ClientSpec{{Name: "alice"}},
	}
	sys, err := replica.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice := sys.Client("alice")
	ref := CalcRef(spec.Domain)
	var decisions []string
	for _, c := range eqCalls() {
		res, err := alice.CallAndRun(ref, c.op, c.args, 10_000_000)
		if err != nil {
			t.Fatalf("netsim %s%v: %v", c.op, c.args, err)
		}
		decisions = append(decisions, canonical(t, res))
	}
	return decisions
}

func eqSpec() *Spec {
	return &Spec{
		Seed:   eqSeed,
		F:      1,
		Domain: "calc",
		Secret: "equivalence-test-secret",
		// Real clock: give the PBFT client a generous retransmission
		// timeout so a slow CI machine does not double-send (which is
		// harmless for decisions — ordering dedups — but wastes time).
		SendTimeoutMS: 500,
		Nodes: []NodeSpec{
			{Name: "node0"}, {Name: "node1"}, {Name: "node2"}, {Name: "node3"},
			{Name: "load", Clients: []string{"alice"}},
		},
	}
}

// runTCP executes the identical scenario over a loopback TCP cluster:
// five transports (four replica processes, one client process) in this
// test process, real sockets and wall clocks in between.
func runTCP(t *testing.T) []string {
	t.Helper()
	cl, err := StartInProc(eqSpec(), func(string) NodeOptions {
		return NodeOptions{Servant: eqServant}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	load := cl.Nodes["load"]
	ref := CalcRef("calc")
	var decisions []string
	for _, c := range eqCalls() {
		res, err := load.Call("alice", ref, c.op, c.args, 30*time.Second)
		if err != nil {
			t.Fatalf("tcp %s%v: %v", c.op, c.args, err)
		}
		decisions = append(decisions, canonical(t, res))
	}
	return decisions
}

// TestTransportEquivalence pins that the same seeded F1-style scenario —
// a 3f+1 calc domain with a lying element — produces identical vote
// decisions and reply bytes on the deterministic simulator and over real
// loopback TCP. Wall-clock quantities never enter the comparison; the
// decided values (canonical CDR bytes) must match exactly, including the
// masked liar.
func TestTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster; skipped in -short")
	}
	sim := runNetsim(t)
	live := runTCP(t)
	if len(sim) != len(live) {
		t.Fatalf("decision counts differ: netsim %d, tcp %d", len(sim), len(live))
	}
	calls := eqCalls()
	for i := range sim {
		if sim[i] != live[i] {
			t.Fatalf("call %d (%s%v): decisions diverge\nnetsim: %s\ntcp:    %s",
				i, calls[i].op, calls[i].args, sim[i], live[i])
		}
	}
	// And the decisions must be the correct ones: the liar was masked.
	want := canonical(t, []cdr.Value{42.0})
	if sim[0] != want {
		t.Fatalf("first decision is not the masked 42.0: %s", sim[0])
	}
}
