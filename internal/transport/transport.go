// Package transport defines the pluggable message-passing contract every
// ITDOS protocol layer is written against: unicast and multicast sends,
// node registration, group membership, and clock-driven timers.
//
// Two backends implement it. internal/netsim is the deterministic twin — a
// single-threaded discrete-event simulator with virtual time, used by every
// test and recorded experiment. internal/transport/tcp carries the same
// protocol bytes over real sockets with real time, used by the multi-process
// cluster runner (cmd/itdos-cluster) and the open-loop load generator
// (cmd/itdos-load). The same seeded scenario must produce the same protocol
// decisions on both; the equivalence test in internal/cluster pins that.
package transport

import (
	"time"

	"itdos/internal/obs"
)

// NodeID identifies a process endpoint on the transport.
type NodeID string

// GroupID identifies a multicast group.
type GroupID string

// Handler receives messages delivered to a node.
type Handler interface {
	// Receive is invoked by the transport's single delivery thread when a
	// message arrives. Implementations may call back into the transport
	// (Send, Multicast, After) but must not retain payload beyond the call.
	Receive(from NodeID, payload []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, payload []byte)

// Receive implements Handler.
func (f HandlerFunc) Receive(from NodeID, payload []byte) { f(from, payload) }

// Timer is a handle for cancelling a scheduled callback. The zero Timer is
// valid and Stop on it is a no-op, so protocol code can declare a timer
// variable and unconditionally Stop it on every exit path.
type Timer struct {
	stop func()
}

// NewTimer wraps a backend's cancellation action into a Timer. The action
// must be idempotent: protocol code stops timers freely.
func NewTimer(stop func()) Timer { return Timer{stop: stop} }

// Stop cancels the timer if it has not fired. Safe to call multiple times
// and on the zero Timer.
func (t Timer) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// Transport is the send/multicast contract extracted from the protocol
// stack. Both backends serialise all Handler upcalls and timer callbacks
// onto one logical delivery thread (the simulator's event loop, or the TCP
// backend's loop goroutine): protocol state needs no locking, exactly the
// single-threaded discipline the deterministic twin enforces by design.
//
// Transport also satisfies obs.Clock, so tracers and flight recorders
// stamp events from whichever clock — virtual or monotonic wall — the
// deployment runs on.
type Transport interface {
	// Send queues a unicast message for asynchronous delivery. The payload
	// is copied (or framed) before Send returns; callers may reuse it.
	Send(from, to NodeID, payload []byte)
	// Multicast sends to every member of the group (including the sender
	// if it is a member), mirroring IP multicast semantics.
	Multicast(from NodeID, g GroupID, payload []byte)

	// AddNode registers a node's delivery handler. Re-registering an id
	// replaces its handler.
	AddNode(id NodeID, h Handler)
	// RemoveNode unregisters a node; in-flight messages to it are dropped
	// at delivery time.
	RemoveNode(id NodeID)

	// JoinGroup adds a node to a multicast group.
	JoinGroup(g GroupID, id NodeID)
	// LeaveGroup removes a node from a multicast group.
	LeaveGroup(g GroupID, id NodeID)
	// GroupMembers returns the members of a group in deterministic order.
	GroupMembers(g GroupID) []NodeID

	// After schedules fn on the delivery thread at now + d.
	After(d time.Duration, fn func()) Timer
	// Now returns the transport clock: virtual time on the simulator,
	// monotonic time since start on a live backend.
	Now() time.Duration
}

// SendQueue serialises sends through a one-outstanding-request channel
// (the PBFT client of an ordering group allows a single in-flight
// invocation): later payloads wait for the previous acknowledgement. Each
// payload may carry a detached tracing span, ended when its ACK arrives
// (or when the send fails outright).
//
// It is not safe for concurrent use: like every protocol structure it
// lives on the transport's delivery thread.
type SendQueue struct {
	// SendNow performs one immediate send attempt. Required.
	SendNow func(data []byte) error

	queue    [][]byte
	spans    []*obs.Span
	inflight bool
	cur      *obs.Span
}

// Send enqueues data, transmitting immediately when nothing is in flight.
// sp may be nil (spans are nil-safe).
func (q *SendQueue) Send(data []byte, sp *obs.Span) {
	if q.inflight {
		q.queue = append(q.queue, data)
		q.spans = append(q.spans, sp)
		return
	}
	q.inflight = true
	q.cur = sp
	if err := q.SendNow(data); err != nil {
		q.inflight = false
		q.cur.End()
		q.cur = nil
	}
}

// Acked advances the queue after the in-flight send was acknowledged,
// transmitting the next queued payload if any.
func (q *SendQueue) Acked() {
	q.cur.End()
	q.cur = nil
	if len(q.queue) == 0 {
		q.inflight = false
		return
	}
	next := q.queue[0]
	q.queue = q.queue[1:]
	q.cur = q.spans[0]
	q.spans = q.spans[1:]
	if err := q.SendNow(next); err != nil {
		q.inflight = false
		q.cur.End()
		q.cur = nil
	}
}

// Depth returns the number of payloads waiting behind the in-flight one.
func (q *SendQueue) Depth() int { return len(q.queue) }

// Inflight reports whether a send awaits acknowledgement.
func (q *SendQueue) Inflight() bool { return q.inflight }
