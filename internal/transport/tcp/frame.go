package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"itdos/internal/transport"
)

// Wire format, one frame per transport message:
//
//	u32 bodyLen (big-endian) | body
//	body = u8 fromLen | from | u8 toLen | to | payload
//
// bodyLen counts the body only. Node identifiers are limited to 255 bytes
// by the u8 length prefixes; bodyLen is bounded by the connection's
// configured MaxFrame before any allocation, so a Byzantine peer cannot
// make us reserve memory it never sends.

// DefaultMaxFrame bounds a frame body when Config.MaxFrame is zero. Large
// enough for a fragmented SMIOP envelope with headroom, small enough that
// a malicious length prefix cannot balloon memory.
const DefaultMaxFrame = 1 << 20

// frameHeaderLen is the length-prefix size preceding every body.
const frameHeaderLen = 4

var (
	errFrameTooLarge  = errors.New("tcp: frame exceeds max size")
	errFrameTruncated = errors.New("tcp: truncated frame body")
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. Identifiers longer than 255 bytes are an error.
func AppendFrame(dst []byte, from, to transport.NodeID, payload []byte) ([]byte, error) {
	if len(from) > 255 || len(to) > 255 {
		return dst, fmt.Errorf("tcp: node id too long (from %d, to %d bytes)", len(from), len(to))
	}
	bodyLen := 1 + len(from) + 1 + len(to) + len(payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	dst = append(dst, byte(len(from)))
	dst = append(dst, from...)
	dst = append(dst, byte(len(to)))
	dst = append(dst, to...)
	dst = append(dst, payload...)
	return dst, nil
}

// DecodeFrame parses one frame body (the bytes after the u32 length
// prefix). The returned payload aliases body; callers that retain it past
// the buffer's lifetime must copy.
func DecodeFrame(body []byte) (from, to transport.NodeID, payload []byte, err error) {
	if len(body) < 1 {
		return "", "", nil, errFrameTruncated
	}
	fromLen := int(body[0])
	body = body[1:]
	if fromLen > len(body) {
		return "", "", nil, errFrameTruncated
	}
	from = transport.NodeID(body[:fromLen])
	body = body[fromLen:]
	if len(body) < 1 {
		return "", "", nil, errFrameTruncated
	}
	toLen := int(body[0])
	body = body[1:]
	if toLen > len(body) {
		return "", "", nil, errFrameTruncated
	}
	to = transport.NodeID(body[:toLen])
	payload = body[toLen:]
	return from, to, payload, nil
}

// readFrame reads one length-prefixed frame body from r into a fresh
// buffer, rejecting bodies larger than maxFrame before allocating.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	bodyLen := binary.BigEndian.Uint32(hdr[:])
	if bodyLen > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", errFrameTooLarge, bodyLen, maxFrame)
	}
	body := make([]byte, int(bodyLen))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
