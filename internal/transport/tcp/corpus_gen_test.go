//go:build corpusgen

package tcp

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"itdos/internal/transport"
)

// TestGenTCPFrameCorpus writes the committed seed corpus for
// FuzzTCPFrameDecode: well-formed frames (typical identity shapes and an
// empty payload), both identity-length truncations, a maximal u8 identity
// length claiming more bytes than the body holds, and an empty body.
// Regenerate with:
//
//	go test -tags corpusgen -run TestGenTCPFrameCorpus ./internal/transport/tcp
func TestGenTCPFrameCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTCPFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := func(from, to string, payload []byte) []byte {
		frame, err := AppendFrame(nil, transport.NodeID(from), transport.NodeID(to), payload)
		if err != nil {
			t.Fatal(err)
		}
		return frame[frameHeaderLen:]
	}
	full := body("gm/r0", "calc/r3/inbox", []byte("share-bundle-bytes"))
	seeds := [][]byte{
		full,
		body("alice/tx/calc", "calc/r0", nil),
		body("", "", []byte{}),
		full[:3],                           // cut inside the from identity
		full[:len(full)-20],                // cut inside the to identity
		{0xFF, 'a', 'b'},                   // fromLen=255 claims past the body end
		{5, 'a', 'b', 'c', 'd', 'e', 0xFF}, // toLen=255 claims past the end
		{},
	}
	for i, seed := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
