package tcp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"itdos/internal/transport"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		from, to transport.NodeID
		payload  []byte
	}{
		{"a", "b", []byte("hello")},
		{"calc/r1", "alice/inbox", nil},
		{"", "", []byte{}},
		{"gm/r0", "calc/r3/inbox", bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, tc := range cases {
		frame, err := AppendFrame(nil, tc.from, tc.to, tc.payload)
		if err != nil {
			t.Fatalf("AppendFrame(%q,%q): %v", tc.from, tc.to, err)
		}
		body, err := readFrame(bytes.NewReader(frame), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		from, to, payload, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if from != tc.from || to != tc.to || !bytes.Equal(payload, tc.payload) {
			t.Fatalf("round trip changed frame: (%q,%q,%q) != (%q,%q,%q)",
				from, to, payload, tc.from, tc.to, tc.payload)
		}
	}
}

func TestFrameRejectsLongIdentity(t *testing.T) {
	long := transport.NodeID(strings.Repeat("x", 256))
	if _, err := AppendFrame(nil, long, "b", nil); err == nil {
		t.Fatal("accepted 256-byte from identity")
	}
	if _, err := AppendFrame(nil, "a", long, nil); err == nil {
		t.Fatal("accepted 256-byte to identity")
	}
}

func TestReadFrameBoundsLength(t *testing.T) {
	// A length prefix larger than maxFrame must be rejected before the
	// body is allocated or read.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	_, err := readFrame(bytes.NewReader(hdr), 1<<16)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversize length prefix: got %v, want errFrameTooLarge", err)
	}
}

func TestDecodeFrameTruncation(t *testing.T) {
	frame, err := AppendFrame(nil, "calc/r0", "alice/inbox", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	body := frame[frameHeaderLen:]
	// Every proper prefix that cuts into the identities must be rejected,
	// never panic. (Prefixes that still contain both identities decode with
	// a shorter payload — that is the framing contract: payload is
	// whatever follows the identities.)
	for n := 0; n < len(body); n++ {
		from, to, payload, err := DecodeFrame(body[:n])
		if err != nil {
			continue
		}
		if from != "calc/r0" || to != "alice/inbox" {
			t.Fatalf("truncated body decoded to wrong identities (%q,%q) at %d", from, to, n)
		}
		if len(payload) >= len("payload") {
			t.Fatalf("truncated body decoded full payload at %d", n)
		}
	}
}
