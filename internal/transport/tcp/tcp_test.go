package tcp

import (
	"testing"
	"time"

	"itdos/internal/obs"
	"itdos/internal/transport"
)

// twoProcs builds and starts two loopback transports, a and b, hosting
// the identity prefixes "a" and "b" respectively.
func twoProcs(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	hosts := map[string][]string{"pa": {"a"}, "pb": {"b"}}
	ta, err := New(Config{Process: "pa", Listen: "127.0.0.1:0", Hosts: hosts, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(Config{Process: "pb", Listen: "127.0.0.1:0", Hosts: hosts, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[string]string{"pa": ta.Addr(), "pb": tb.Addr()}
	ta.SetPeers(addrs)
	tb.SetPeers(addrs)
	if err := ta.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ta.Close(); tb.Close() })
	return ta, tb
}

func TestTCPSendRemoteAndLocal(t *testing.T) {
	ta, tb := twoProcs(t)

	gotB := make(chan string, 1)
	tb.Post(func() {
		tb.AddNode("b/inbox", transport.HandlerFunc(func(from transport.NodeID, payload []byte) {
			gotB <- string(from) + "|" + string(payload)
		}))
	})
	gotA := make(chan string, 1)
	ta.Post(func() {
		ta.AddNode("a/inbox", transport.HandlerFunc(func(from transport.NodeID, payload []byte) {
			gotA <- string(from) + "|" + string(payload)
		}))
		// Remote: a → b over the socket.
		ta.Send("a", "b/inbox", []byte("over-tcp"))
		// Local: a → a via the loop's local queue.
		ta.Send("a", "a/inbox", []byte("loopback"))
	})

	for want, ch := range map[string]chan string{
		"a|over-tcp": gotB,
		"a|loopback": gotA,
	} {
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("delivery mismatch: got %q, want %q", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}
}

func TestTCPGhostSuppression(t *testing.T) {
	ta, tb := twoProcs(t)

	delivered := make(chan string, 4)
	tb.Post(func() {
		tb.AddNode("b/inbox", transport.HandlerFunc(func(_ transport.NodeID, payload []byte) {
			delivered <- string(payload)
		}))
	})
	ta.Post(func() {
		// A ghost registration: "b/ghost" routes to process pb, so pa must
		// ignore it rather than swallow pb's traffic.
		ta.AddNode("b/ghost", transport.HandlerFunc(func(transport.NodeID, []byte) {
			t.Error("ghost node received a delivery")
		}))
		// A ghost send: "b" is hosted by pb, so pa must drop it.
		ta.Send("b", "b/inbox", []byte("from-ghost"))
		// The hosted identity still works.
		ta.Send("a", "b/inbox", []byte("from-real"))
	})

	select {
	case got := <-delivered:
		if got != "from-real" {
			t.Fatalf("ghost send was delivered: %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
}

func TestTCPMulticastAndGroups(t *testing.T) {
	ta, tb := twoProcs(t)

	got := make(chan string, 4)
	tb.Post(func() {
		tb.AddNode("b/r0", transport.HandlerFunc(func(_ transport.NodeID, p []byte) { got <- "b/r0:" + string(p) }))
	})
	ta.Post(func() {
		ta.AddNode("a/r0", transport.HandlerFunc(func(_ transport.NodeID, p []byte) { got <- "a/r0:" + string(p) }))
	})
	// Both processes track full membership; multicast fans out from the
	// sender's process to local and remote members alike.
	join := func(tr *Transport) {
		tr.Post(func() {
			tr.JoinGroup("g", "a/r0")
			tr.JoinGroup("g", "b/r0")
		})
	}
	join(ta)
	join(tb)
	ta.Post(func() {
		if members := ta.GroupMembers("g"); len(members) != 2 {
			t.Errorf("group has %d members, want 2", len(members))
		}
		ta.Multicast("a", "g", []byte("m"))
	})

	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case g := <-got:
			seen[g] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; saw %v", seen)
		}
	}
	if !seen["a/r0:m"] || !seen["b/r0:m"] {
		t.Fatalf("multicast incomplete: %v", seen)
	}
}

func TestTCPAfterAndStop(t *testing.T) {
	ta, _ := twoProcs(t)

	fired := make(chan struct{}, 1)
	ta.Post(func() {
		stopped := ta.After(time.Millisecond, func() { t.Error("stopped timer fired") })
		stopped.Stop()
		ta.After(5*time.Millisecond, func() { fired <- struct{}{} })
	})
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestTCPReconnectBackoff(t *testing.T) {
	hosts := map[string][]string{"pa": {"a"}, "pb": {"b"}}
	reg := obs.NewRegistry()
	ta, err := New(Config{
		Process: "pa", Listen: "127.0.0.1:0", Hosts: hosts, Metrics: reg,
		// Point pb at a dead port: every dial fails and backs off.
		Peers:     map[string]string{"pb": "127.0.0.1:1"},
		RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Start(); err != nil {
		t.Fatal(err)
	}
	defer ta.Close()

	retries := reg.Counter("tcp_conn_retries_total")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var n uint64
		done := make(chan struct{})
		ta.Post(func() { n = retries.Value(); close(done) })
		<-done
		if n >= 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("reconnect counter never reached 3")
}

func TestTCPConfigValidation(t *testing.T) {
	if _, err := New(Config{Process: "x", Hosts: map[string][]string{"y": {"a"}}}); err == nil {
		t.Fatal("accepted a process missing from the hosts map")
	}
	if _, err := New(Config{Process: "x", Hosts: map[string][]string{"x": {"a"}, "y": {"a"}}}); err == nil {
		t.Fatal("accepted a duplicate hosted prefix")
	}
	tr, err := New(Config{Process: "x", Hosts: map[string][]string{"x": {"a"}, "y": {"b"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err == nil {
		t.Fatal("started with an unaddressed peer")
	}
}
