package tcp

import (
	"bytes"
	"testing"

	"itdos/internal/pool"
	"itdos/internal/transport"
)

// FuzzTCPFrameDecode drives the length-prefix frame decoder with arbitrary
// bodies. Frame bodies come straight off a socket a Byzantine peer
// controls, so the decoder must never panic, and anything it accepts must
// survive an encode → decode round trip byte-for-byte.
//
// Every body is staged in a pooled arena buffer with release-time
// poisoning on, mirroring a zero-copy receive path. The decoded payload
// aliases the body by contract, so the round-trip comparison snapshots it
// before release; the re-encoded frame must be a fresh copy — poisoning
// the input buffer must not alter it. Run under -race.
func FuzzTCPFrameDecode(f *testing.F) {
	seed, _ := AppendFrame(nil, "calc/r0", "alice/inbox", []byte("payload"))
	f.Add(seed[frameHeaderLen:])
	f.Add([]byte{0})
	f.Add([]byte{2, 'a'})
	pool.SetPoison(true)
	f.Cleanup(func() { pool.SetPoison(false) })
	f.Fuzz(func(t *testing.T, data []byte) {
		pb := pool.Get(len(data))
		pb.B = append(pb.B, data...)

		from, to, payload, err := DecodeFrame(pb.B)
		if err != nil {
			pb.Release()
			return
		}
		if len(from) > 255 || len(to) > 255 {
			t.Fatalf("decoded identity longer than the u8 length prefix allows: %d/%d",
				len(from), len(to))
		}
		if len(from)+len(to)+len(payload)+2 != len(pb.B) {
			t.Fatalf("decoded fields cover %d bytes of a %d-byte body",
				len(from)+len(to)+len(payload)+2, len(pb.B))
		}
		reencoded, err := AppendFrame(nil, from, to, payload)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		// Snapshot the decode, then poison the pooled input: the re-encoded
		// frame must not alias the arena, so it must still decode
		// identically afterwards.
		wantFrom, wantTo := from, to
		wantPayload := append([]byte(nil), payload...)
		pb.Release()

		body := reencoded[frameHeaderLen:]
		from2, to2, payload2, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if from2 != wantFrom || to2 != wantTo || !bytes.Equal(payload2, wantPayload) {
			t.Fatalf("round trip changed frame after poisoning input: (%q,%q,%q) != (%q,%q,%q)",
				from2, to2, payload2, wantFrom, wantTo, wantPayload)
		}
		_ = transport.NodeID(from2)
	})
}
