// Package tcp is the real-network transport backend: the same
// transport.Transport contract internal/netsim simulates, carried over
// length-prefix framed TCP with per-peer persistent connections, bounded
// send queues, and reconnection with capped exponential backoff.
//
// A deployment is a set of named processes. Every process builds the full
// protocol topology (the identical set of replicas, elements, and clients —
// deterministic key derivation makes the key material agree), but only the
// node identities its config hosts are live here: registrations for
// identities routed to another process are ignored, and sends *from* such
// an identity are dropped, so the ghost instances stay quiescent while the
// hosted ones exchange real bytes. Identity routing is by longest prefix:
// the process hosting "calc/r1" owns "calc/r1" and everything under
// "calc/r1/...".
//
// Concurrency model: one loop goroutine serialises every Handler upcall,
// timer callback, and metrics update — the same single-delivery-thread
// discipline the simulator enforces by design, so protocol code needs no
// locking on either backend. External drivers enter via Post; sends issued
// from inside a handler go through an internal local queue so the loop
// never blocks on itself. Per-peer sender goroutines own the sockets:
// frames are enqueued non-blockingly onto a bounded channel (overflow is
// counted and dropped — the protocol's retransmit machinery recovers), and
// a broken connection is redialled with capped exponential backoff,
// counted like smiop_conn_retries_total.
package tcp

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"itdos/internal/obs"
	"itdos/internal/transport"
)

// Config describes one process of a cluster.
type Config struct {
	// Process is this process's name; must appear in Hosts.
	Process string
	// Listen is the TCP listen address (e.g. "127.0.0.1:9001"; port 0
	// picks a free port — read it back with Addr before SetPeers).
	Listen string
	// Peers maps every other process name to its dial address. May be
	// filled in later with SetPeers (two-phase startup lets in-process
	// clusters bind all listeners on port 0 first).
	Peers map[string]string
	// Hosts maps each process name to the identity prefixes it hosts.
	// Every process must use the identical Hosts map; a node id routes to
	// the process with the longest matching prefix.
	Hosts map[string][]string
	// Metrics receives transport instrumentation; nil disables it.
	Metrics *obs.Registry
	// MaxFrame bounds a frame body; 0 means DefaultMaxFrame.
	MaxFrame int
	// QueueLen bounds each per-peer send queue; 0 means 1024 frames.
	QueueLen int
	// RetryBase/RetryCap shape the reconnect backoff; zero values mean
	// 50ms doubling up to 2s.
	RetryBase time.Duration
	RetryCap  time.Duration
}

type hostedPrefix struct {
	prefix  string
	process string
}

type peer struct {
	name string
	addr string
	ch   chan []byte
}

// Transport carries transport.Transport traffic over TCP. Create with New,
// wire addresses with SetPeers, then Start. All Transport-interface
// methods must run on the loop goroutine (use Post from outside).
type Transport struct {
	cfg      Config
	maxFrame int
	queueLen int

	ln    net.Listener
	start time.Time

	prefixes   []hostedPrefix // sorted by prefix for deterministic routing
	routeCache map[string]string

	loopCh chan func()
	localQ []func() // loop-only: sends issued from inside a handler
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	nodes  map[transport.NodeID]transport.Handler
	groups map[transport.GroupID][]transport.NodeID
	peers  map[string]*peer

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// All instruments are touched on the loop goroutine only (the obs
	// registry is not internally locked).
	mBytesSent  *obs.Counter
	mFramesSent *obs.Counter
	mBytesRecv  *obs.Counter
	mFramesRecv *obs.Counter
	mDropped    *obs.Counter // send-queue overflow
	mUnroutable *obs.Counter // delivered frame with no local handler
	mDecodeErr  *obs.Counter
	mReconnects *obs.Counter
	mQueueDepth *obs.Gauge
}

var _ transport.Transport = (*Transport)(nil)

// New validates cfg and binds the listener; the transport is inert until
// Start. Listen may use port 0 — Addr returns the bound address.
func New(cfg Config) (*Transport, error) {
	if cfg.Process == "" {
		return nil, fmt.Errorf("tcp: empty process name")
	}
	if _, ok := cfg.Hosts[cfg.Process]; !ok {
		return nil, fmt.Errorf("tcp: process %q not in hosts map", cfg.Process)
	}
	seen := make(map[string]string)
	var prefixes []hostedPrefix
	// Sorted-keys iteration: routing must not depend on map order.
	procs := make([]string, 0, len(cfg.Hosts))
	for p := range cfg.Hosts {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, proc := range procs {
		for _, pre := range cfg.Hosts[proc] {
			if pre == "" {
				return nil, fmt.Errorf("tcp: process %q hosts an empty prefix", proc)
			}
			if prev, dup := seen[pre]; dup {
				return nil, fmt.Errorf("tcp: prefix %q hosted by both %q and %q", pre, prev, proc)
			}
			seen[pre] = proc
			prefixes = append(prefixes, hostedPrefix{prefix: pre, process: proc})
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].prefix < prefixes[j].prefix })

	t := &Transport{
		cfg:        cfg,
		maxFrame:   cfg.MaxFrame,
		queueLen:   cfg.QueueLen,
		start:      time.Now(),
		prefixes:   prefixes,
		routeCache: make(map[string]string),
		loopCh:     make(chan func(), 256),
		closed:     make(chan struct{}),
		nodes:      make(map[transport.NodeID]transport.Handler),
		groups:     make(map[transport.GroupID][]transport.NodeID),
		peers:      make(map[string]*peer),
		conns:      make(map[net.Conn]struct{}),
	}
	if t.maxFrame <= 0 {
		t.maxFrame = DefaultMaxFrame
	}
	if t.queueLen <= 0 {
		t.queueLen = 1024
	}
	r := cfg.Metrics
	t.mBytesSent = r.Counter("tcp_bytes_sent_total")
	t.mFramesSent = r.Counter("tcp_frames_sent_total")
	t.mBytesRecv = r.Counter("tcp_bytes_recv_total")
	t.mFramesRecv = r.Counter("tcp_frames_recv_total")
	t.mDropped = r.Counter("tcp_frames_dropped_total")
	t.mUnroutable = r.Counter("tcp_frames_unroutable_total")
	t.mDecodeErr = r.Counter("tcp_frame_decode_errors_total")
	t.mReconnects = r.Counter("tcp_conn_retries_total")
	t.mQueueDepth = r.Gauge("tcp_send_queue_depth")

	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
	}
	for _, proc := range procs {
		if proc == cfg.Process {
			continue
		}
		t.peers[proc] = &peer{name: proc, addr: cfg.Peers[proc], ch: make(chan []byte, t.queueLen)}
	}
	return t, nil
}

// Addr returns the listener's bound address ("" when not listening).
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetPeers fills in (or overrides) peer dial addresses. Must be called
// before Start.
func (t *Transport) SetPeers(addrs map[string]string) {
	for proc, p := range t.peers {
		if a, ok := addrs[proc]; ok {
			p.addr = a
		}
	}
}

// Start launches the loop, accept, and per-peer sender goroutines.
func (t *Transport) Start() error {
	for _, p := range t.peers {
		if p.addr == "" {
			return fmt.Errorf("tcp: no address for peer %q", p.name)
		}
	}
	t.wg.Add(1)
	go t.runLoop()
	if t.ln != nil {
		t.wg.Add(1)
		go t.runAccept()
	}
	for _, p := range t.peers {
		t.wg.Add(1)
		go t.runSender(p)
	}
	return nil
}

// Close shuts the transport down and waits for all goroutines.
func (t *Transport) Close() {
	t.once.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		t.connMu.Lock()
		for c := range t.conns {
			c.Close()
		}
		t.connMu.Unlock()
	})
	t.wg.Wait()
}

// Post schedules fn on the loop goroutine — the only way external
// goroutines (load drivers, timers, socket readers) may touch protocol
// state. Blocks if the loop is saturated (socket backpressure); no-ops
// after Close.
func (t *Transport) Post(fn func()) {
	select {
	case t.loopCh <- fn:
	case <-t.closed:
	}
}

func (t *Transport) runLoop() {
	defer t.wg.Done()
	for {
		// Drain loop-originated work first: a handler's sends run before
		// the next external event, preserving the simulator's
		// send-then-deliver causality without ever blocking the loop.
		for len(t.localQ) > 0 {
			fn := t.localQ[0]
			t.localQ = t.localQ[1:]
			fn()
		}
		select {
		case fn := <-t.loopCh:
			fn()
		case <-t.closed:
			return
		}
	}
}

// route resolves the process hosting id by longest matching prefix
// ("" when no prefix matches). Loop-goroutine only (route cache).
func (t *Transport) route(id string) string {
	if proc, ok := t.routeCache[id]; ok {
		return proc
	}
	best, bestLen := "", -1
	for _, hp := range t.prefixes {
		if len(hp.prefix) > bestLen &&
			(id == hp.prefix || strings.HasPrefix(id, hp.prefix+"/")) {
			best, bestLen = hp.process, len(hp.prefix)
		}
	}
	t.routeCache[id] = best
	return best
}

// Now returns monotonic time since the transport was created.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// AddNode registers a hosted node's handler. Registrations for identities
// routed to another process are ignored: every process builds the full
// topology, but only its hosted instances go live.
func (t *Transport) AddNode(id transport.NodeID, h transport.Handler) {
	if t.route(string(id)) != t.cfg.Process {
		return
	}
	t.nodes[id] = h
}

// RemoveNode unregisters a node.
func (t *Transport) RemoveNode(id transport.NodeID) {
	delete(t.nodes, id)
}

// JoinGroup adds a node to a multicast group. Membership is tracked in
// full (ghosts included) so Multicast fans out to every process.
func (t *Transport) JoinGroup(g transport.GroupID, id transport.NodeID) {
	for _, m := range t.groups[g] {
		if m == id {
			return
		}
	}
	t.groups[g] = append(t.groups[g], id)
	sort.Slice(t.groups[g], func(i, j int) bool { return t.groups[g][i] < t.groups[g][j] })
}

// LeaveGroup removes a node from a multicast group.
func (t *Transport) LeaveGroup(g transport.GroupID, id transport.NodeID) {
	members := t.groups[g]
	for i, m := range members {
		if m == id {
			t.groups[g] = append(members[:i], members[i+1:]...)
			return
		}
	}
}

// GroupMembers returns the members of a group in deterministic order.
func (t *Transport) GroupMembers(g transport.GroupID) []transport.NodeID {
	return append([]transport.NodeID(nil), t.groups[g]...)
}

// Send queues a unicast message. Sends from an identity hosted elsewhere
// are dropped (ghost suppression); local destinations are delivered
// asynchronously on the loop; remote destinations are framed and enqueued
// on the owning peer's bounded queue, dropping (and counting) on overflow.
func (t *Transport) Send(from, to transport.NodeID, payload []byte) {
	if t.route(string(from)) != t.cfg.Process {
		return
	}
	if t.route(string(to)) == t.cfg.Process {
		copied := append([]byte(nil), payload...)
		t.localQ = append(t.localQ, func() { t.deliver(from, to, copied) })
		return
	}
	t.sendRemote(from, to, payload)
}

// Multicast sends to every member of the group (including the sender if it
// is a member), mirroring IP multicast semantics.
func (t *Transport) Multicast(from transport.NodeID, g transport.GroupID, payload []byte) {
	for _, m := range t.groups[g] {
		t.Send(from, m, payload)
	}
}

func (t *Transport) sendRemote(from, to transport.NodeID, payload []byte) {
	proc := t.route(string(to))
	p, ok := t.peers[proc]
	if !ok {
		t.mUnroutable.Inc()
		return
	}
	frame, err := AppendFrame(nil, from, to, payload)
	if err != nil {
		t.mDecodeErr.Inc()
		return
	}
	select {
	case p.ch <- frame:
		t.mFramesSent.Inc()
		t.mBytesSent.Add(uint64(len(frame)))
		t.mQueueDepth.Set(float64(len(p.ch)))
	default:
		t.mDropped.Inc()
	}
}

// deliver hands a message to the destination handler. Loop-goroutine only.
func (t *Transport) deliver(from, to transport.NodeID, payload []byte) {
	h, ok := t.nodes[to]
	if !ok {
		t.mUnroutable.Inc()
		return
	}
	t.mFramesRecv.Inc()
	t.mBytesRecv.Add(uint64(len(payload)))
	h.Receive(from, payload)
}

// After schedules fn on the loop goroutine at now + d. The cancellation
// flag is only touched on the loop, so protocol code can Stop the timer
// from a handler without racing the firing callback.
func (t *Transport) After(d time.Duration, fn func()) transport.Timer {
	cancelled := new(bool)
	tm := time.AfterFunc(d, func() {
		t.Post(func() {
			if !*cancelled {
				fn()
			}
		})
	})
	return transport.NewTimer(func() {
		*cancelled = true
		tm.Stop()
	})
}

func (t *Transport) backoff(attempt int) time.Duration {
	base, cap := t.cfg.RetryBase, t.cfg.RetryCap
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// runSender owns the outbound socket to one peer: dial with capped
// exponential backoff (counted like smiop_conn_retries_total), then write
// frames off the bounded queue until the connection breaks.
func (t *Transport) runSender(p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	attempt := 0
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		if conn == nil {
			select {
			case <-t.closed:
				return
			default:
			}
			c, err := net.Dial("tcp", p.addr)
			if err != nil {
				attempt++
				t.Post(func() { t.mReconnects.Inc() })
				tm := time.NewTimer(t.backoff(attempt))
				select {
				case <-tm.C:
				case <-t.closed:
					tm.Stop()
					return
				}
				continue
			}
			conn = c
			attempt = 0
		}
		select {
		case frame := <-p.ch:
			if _, err := conn.Write(frame); err != nil {
				// The frame is lost with the connection; the protocol's
				// retransmit machinery (SMIOP open_request retries, PBFT
				// view timers) recovers once the redial succeeds.
				conn.Close()
				conn = nil
			}
		case <-t.closed:
			return
		}
	}
}

func (t *Transport) runAccept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.connMu.Lock()
		t.conns[conn] = struct{}{}
		t.connMu.Unlock()
		t.wg.Add(1)
		go t.runReader(conn)
	}
}

// runReader parses inbound frames and posts deliveries to the loop. The
// blocking Post is deliberate: a saturated loop exerts TCP backpressure
// on the sender instead of buffering without bound.
func (t *Transport) runReader(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.connMu.Lock()
		delete(t.conns, conn)
		t.connMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		body, err := readFrame(br, t.maxFrame)
		if err != nil {
			return
		}
		from, to, payload, err := DecodeFrame(body)
		if err != nil {
			t.Post(func() { t.mDecodeErr.Inc() })
			continue
		}
		pl := payload // aliases body, which is fresh per frame
		t.Post(func() { t.deliver(from, to, pl) })
	}
}
