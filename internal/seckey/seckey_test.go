package seckey

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func pair(t *testing.T) (*Channel, *Channel) {
	t.Helper()
	k := testKey(7)
	return NewChannel(k, "conn"), NewChannel(k, "conn")
}

func TestSealOpenRoundTrip(t *testing.T) {
	tx, rx := pair(t)
	for _, msg := range [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAA}, 4096)} {
		sealed, err := tx.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rx.Open(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip: got %d bytes, want %d", len(got), len(msg))
		}
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	tx, _ := pair(t)
	msg := bytes.Repeat([]byte("secret-content-"), 10)
	sealed, err := tx.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, []byte("secret-content-")) {
		t.Fatal("plaintext visible in sealed message")
	}
}

func TestTamperDetected(t *testing.T) {
	tx, _ := pair(t)
	sealed, err := tx.Seal([]byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sealed); i += 7 {
		rx2 := NewChannel(testKey(7), "conn")
		mut := append([]byte{}, sealed...)
		mut[i] ^= 0x01
		if _, err := rx2.Open(mut); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestWrongKeyRejected(t *testing.T) {
	tx := NewChannel(testKey(1), "conn")
	rx := NewChannel(testKey(2), "conn")
	sealed, _ := tx.Seal([]byte("x"))
	if _, err := rx.Open(sealed); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("wrong key: err = %v", err)
	}
}

func TestWrongContextRejected(t *testing.T) {
	tx := NewChannel(testKey(1), "connA")
	rx := NewChannel(testKey(1), "connB")
	sealed, _ := tx.Seal([]byte("x"))
	if _, err := rx.Open(sealed); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("cross-context message accepted: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	tx, rx := pair(t)
	sealed, _ := tx.Seal([]byte("once"))
	if _, err := rx.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(sealed); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestOutOfOrderWithinWindowAccepted(t *testing.T) {
	tx, rx := pair(t)
	var sealed [][]byte
	for i := 0; i < 5; i++ {
		s, _ := tx.Seal([]byte{byte(i)})
		sealed = append(sealed, s)
	}
	for _, i := range []int{4, 1, 3, 0, 2} {
		if _, err := rx.Open(sealed[i]); err != nil {
			t.Fatalf("out-of-order message %d rejected: %v", i, err)
		}
	}
	// Every one of them is now a replay.
	for i := range sealed {
		if _, err := rx.Open(sealed[i]); !errors.Is(err, ErrReplay) {
			t.Fatalf("replay %d accepted", i)
		}
	}
}

func TestStaleBeyondWindowRejected(t *testing.T) {
	tx, rx := pair(t)
	old, _ := tx.Seal([]byte("old"))
	var last []byte
	for i := 0; i < 70; i++ {
		last, _ = tx.Seal([]byte("new"))
	}
	if _, err := rx.Open(last); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(old); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale message beyond window accepted: %v", err)
	}
}

func TestTruncatedRejected(t *testing.T) {
	tx, rx := pair(t)
	sealed, _ := tx.Seal([]byte("abcdefgh"))
	for cut := 0; cut < len(sealed); cut++ {
		if _, err := rx.Open(sealed[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestPairwiseKeysDistinctAndDeterministic(t *testing.T) {
	secret := []byte("config-secret")
	k1 := Pairwise(secret, "gm/0", "bank/1")
	k2 := Pairwise(secret, "gm/0", "bank/1")
	if k1 != k2 {
		t.Fatal("pairwise key not deterministic")
	}
	if Pairwise(secret, "gm/0", "bank/2") == k1 {
		t.Fatal("different elements share a pairwise key")
	}
	if Pairwise(secret, "gm/1", "bank/1") == k1 {
		t.Fatal("different GM elements share a pairwise key")
	}
	// Separator prevents concatenation ambiguity.
	if Pairwise(secret, "gm/0x", "y") == Pairwise(secret, "gm/0", "xy") {
		t.Fatal("ambiguous pairwise derivation")
	}
}

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 16)); err == nil {
		t.Fatal("short key accepted")
	}
	b := bytes.Repeat([]byte{9}, KeySize)
	k, err := KeyFromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k[:], b) {
		t.Fatal("key bytes mismatch")
	}
}

func TestQuickSealOpenProperty(t *testing.T) {
	prop := func(msg []byte, keyByte byte, ctx string) bool {
		k := testKey(keyByte)
		tx := NewChannel(k, ctx)
		rx := NewChannel(k, ctx)
		sealed, err := tx.Seal(msg)
		if err != nil {
			return false
		}
		got, err := rx.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOpenGarbageNeverPanics(t *testing.T) {
	rx := NewChannel(testKey(3), "c")
	prop := func(b []byte) bool {
		_, _ = rx.Open(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSealToMatchesSeal pins the zero-copy sealing primitive: SealTo into
// a reserved region — whether the plaintext is staged in place in the
// region's ciphertext span or lives in a separate buffer — produces bytes
// identical to Seal from the same channel state.
func TestSealToMatchesSeal(t *testing.T) {
	var k Key
	copy(k[:], "0123456789abcdef0123456789abcdef")
	pt := []byte("the plaintext to protect, somewhat longer than a block")

	ref := NewChannel(k, "ctx")
	want, err := ref.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}

	// Encrypt-copy mode: plaintext in a separate buffer.
	c1 := NewChannel(k, "ctx")
	buf := append([]byte(nil), []byte("prefix")...)
	start := len(buf)
	buf = append(buf, make([]byte, SealedLen(len(pt)))...)
	c1.SealTo(buf, start, pt)
	if !bytes.Equal(buf[start:], want) {
		t.Fatal("SealTo (copy mode) differs from Seal")
	}

	// In-place mode: plaintext staged in the region's ciphertext span.
	c2 := NewChannel(k, "ctx")
	buf2 := make([]byte, SealedLen(len(pt)))
	copy(buf2[SealHeadLen:], pt)
	c2.SealTo(buf2, 0, buf2[SealHeadLen:SealHeadLen+len(pt)])
	if !bytes.Equal(buf2, want) {
		t.Fatal("SealTo (in-place mode) differs from Seal")
	}

	// Both open cleanly at the receiver.
	r := NewChannel(k, "ctx")
	got, err := r.Open(buf[start:])
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("Open after SealTo: %v", err)
	}
}

// TestSealedLenConstants keeps the framing constants in lockstep with the
// wire layout.
func TestSealedLenConstants(t *testing.T) {
	var k Key
	c := NewChannel(k, "x")
	sealed, err := c.Seal(make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != SealedLen(100) {
		t.Fatalf("SealedLen(100) = %d, wire = %d", SealedLen(100), len(sealed))
	}
	if SealHeadLen != headerLen+nonceSize || SealTailLen != macSize {
		t.Fatal("framing constants drifted from the wire layout")
	}
}
