// Package seckey implements ITDOS session security: symmetric
// communication keys protecting client↔server traffic (paper §2, §3.5),
// authenticated encryption, and replay protection.
//
// The paper's prototype used 2002-era primitives (DES, MD5/RSA); this
// implementation substitutes modern stdlib equivalents with the same
// architectural role: AES-256-CTR with an HMAC-SHA256 tag
// (encrypt-then-MAC) for confidentiality+integrity, and explicit sequence
// numbers inside the authenticated header for replay protection ("each
// message contains a sequence number to protect against replay", §3.6).
package seckey

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
)

// KeySize is the communication key length in bytes.
const KeySize = 32

// Key is a symmetric communication key shared by a client/server
// replication domain pair.
type Key [KeySize]byte

// KeyFromBytes copies b into a Key.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, fmt.Errorf("seckey: key must be %d bytes, got %d", KeySize, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// derive produces a purpose-bound subkey from the communication key.
func (k Key) derive(purpose string) []byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte(purpose))
	return mac.Sum(nil)
}

const (
	macSize   = sha256.Size
	nonceSize = aes.BlockSize
	headerLen = 8 + 4 // seqno + payload length
)

// Sealed-message framing constants for callers that reserve the seal
// region in a shared buffer (zero-copy pipeline):
//
//	seq(8) | len(4) | nonce(16) | ciphertext | hmac(32)
const (
	// SealHeadLen is the fixed prefix before the ciphertext.
	SealHeadLen = headerLen + nonceSize
	// SealTailLen is the MAC appended after the ciphertext.
	SealTailLen = macSize
)

// SealedLen returns the sealed size of an n-byte plaintext.
func SealedLen(n int) int { return SealHeadLen + n + SealTailLen }

// ErrAuthentication is returned when a sealed message fails integrity
// verification.
var ErrAuthentication = errors.New("seckey: message authentication failed")

// ErrReplay is returned when a sealed message's sequence number was already
// accepted or is too old.
var ErrReplay = errors.New("seckey: replayed or stale sequence number")

// Channel seals and opens messages under one communication key. A Channel
// is directional state for replay protection: use one per (sender,
// receiver) flow. Not safe for concurrent use.
//
// The AES key schedule and both HMAC states are expanded once at NewChannel
// and reused for every message — the shared key schedule that lets a batch
// of envelopes (e.g. the fragments of one large message) seal in one pass
// with no per-message key setup or allocation.
type Channel struct {
	encKey []byte
	macKey []byte

	block    cipher.Block // cached AES key schedule
	tagMac   hash.Hash    // cached HMAC(macKey) state for tags
	nonceMac hash.Hash    // cached HMAC(macKey) state for nonce derivation
	sumBuf   [sha256.Size]byte

	sendSeq uint64
	window  replayWindow
}

// NewChannel builds a channel from a communication key. The context string
// binds the derived keys to a connection identity (e.g. "connA→B") so the
// same communication key never keys two flows identically.
func NewChannel(k Key, context string) *Channel {
	c := &Channel{
		encKey: k.derive("enc:" + context),
		macKey: k.derive("mac:" + context),
	}
	block, err := aes.NewCipher(c.encKey)
	if err != nil {
		// derive always yields a 32-byte key; aes.NewCipher cannot fail on it.
		panic(fmt.Sprintf("seckey: cipher: %v", err))
	}
	c.block = block
	c.tagMac = hmac.New(sha256.New, c.macKey)
	c.nonceMac = hmac.New(sha256.New, c.macKey)
	return c
}

// sealRegion fills the sealed-message region buf[start:start+SealedLen(n)]
// for the plaintext, which either aliases the region's ciphertext span
// exactly (in-place encryption) or is a separate slice (encrypt-copy in
// one pass). The caller has already reserved the region.
func (c *Channel) sealRegion(buf []byte, start int, plaintext []byte) {
	c.sendSeq++
	out := buf[start : start+SealedLen(len(plaintext))]
	binary.BigEndian.PutUint64(out[0:8], c.sendSeq)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(plaintext)))
	nonce := out[headerLen : headerLen+nonceSize]
	// Deterministic nonce derived from (macKey, seq): unique per key+seq,
	// and reproducible without an entropy source in the hot path.
	c.nonceMac.Reset()
	c.nonceMac.Write([]byte("nonce"))
	c.nonceMac.Write(out[0:8])
	copy(nonce, c.nonceMac.Sum(c.sumBuf[:0])[:nonceSize])

	ct := out[headerLen+nonceSize : headerLen+nonceSize+len(plaintext)]
	cipher.NewCTR(c.block, nonce).XORKeyStream(ct, plaintext)

	c.tagMac.Reset()
	c.tagMac.Write(out[:headerLen+nonceSize+len(plaintext)])
	copy(out[headerLen+nonceSize+len(plaintext):], c.tagMac.Sum(c.sumBuf[:0]))
}

// Seal encrypts and authenticates plaintext, assigning the next send
// sequence number. Output layout:
//
//	seq(8) | len(4) | nonce(16) | ciphertext | hmac(32)
func (c *Channel) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, SealedLen(len(plaintext)))
	c.sealRegion(out, 0, plaintext)
	return out, nil
}

// SealTo seals plaintext into a region the caller reserved in buf:
// exactly SealedLen(len(plaintext)) bytes starting at start. The
// plaintext may alias the region's ciphertext span exactly (the caller
// staged it at start+SealHeadLen and the encryption happens in place) or
// live elsewhere (one-pass encrypt-copy) — either way no intermediate
// sealed buffer is allocated. Output bytes are identical to Seal's.
func (c *Channel) SealTo(buf []byte, start int, plaintext []byte) {
	c.sealRegion(buf, start, plaintext)
}

// Open verifies and decrypts a sealed message, enforcing replay
// protection. The returned slice is freshly allocated.
func (c *Channel) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < headerLen+nonceSize+macSize {
		return nil, fmt.Errorf("seckey: sealed message too short: %d bytes", len(sealed))
	}
	seq := binary.BigEndian.Uint64(sealed[0:8])
	plen := int(binary.BigEndian.Uint32(sealed[8:12]))
	if plen != len(sealed)-headerLen-nonceSize-macSize {
		return nil, fmt.Errorf("seckey: length field %d does not match body", plen)
	}
	body := sealed[:len(sealed)-macSize]
	wantMAC := sealed[len(sealed)-macSize:]
	c.tagMac.Reset()
	c.tagMac.Write(body)
	if !hmac.Equal(c.tagMac.Sum(c.sumBuf[:0]), wantMAC) {
		return nil, ErrAuthentication
	}
	// Replay check only after authentication: forged sequence numbers must
	// not poison the window.
	if !c.window.accept(seq) {
		return nil, ErrReplay
	}
	nonce := sealed[headerLen : headerLen+nonceSize]
	pt := make([]byte, plen)
	cipher.NewCTR(c.block, nonce).XORKeyStream(pt, sealed[headerLen+nonceSize:headerLen+nonceSize+plen])
	return pt, nil
}

// replayWindow is a sliding 64-entry anti-replay bitmap, as in IPsec.
type replayWindow struct {
	top  uint64
	bits uint64
}

func (w *replayWindow) accept(seq uint64) bool {
	switch {
	case seq == 0:
		return false
	case seq > w.top:
		shift := seq - w.top
		if shift >= 64 {
			w.bits = 0
		} else {
			w.bits <<= shift
		}
		w.bits |= 1
		w.top = seq
		return true
	case w.top-seq >= 64:
		return false // too old to track
	default:
		mask := uint64(1) << (w.top - seq)
		if w.bits&mask != 0 {
			return false
		}
		w.bits |= mask
		return true
	}
}

// Pairwise derives the static pairwise key between a Group Manager element
// and a replication domain element from a shared configuration secret (the
// paper assumes pre-established pairwise shared symmetric keys, §3.5 fn 2).
func Pairwise(configSecret []byte, gmElement, domainElement string) Key {
	mac := hmac.New(sha256.New, configSecret)
	mac.Write([]byte("pairwise|"))
	mac.Write([]byte(gmElement))
	mac.Write([]byte{0})
	mac.Write([]byte(domainElement))
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}
