package seckey

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func fuzzChannelKey() Key {
	var k Key
	for i := range k {
		k[i] = byte(i)
	}
	return k
}

// FuzzSealedOpen exercises the authenticated-encryption boundary three ways:
// Open on raw attacker bytes must fail cleanly (no panic, no allocation from
// unvalidated lengths); Open(Seal(p)) must return p; and flipping any single
// byte of a sealed message must be rejected. Fresh channels per attempt keep
// the replay window out of the way except where tested explicitly.
func FuzzSealedOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("attack at dawn"))
	key := fuzzChannelKey()
	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw bytes as a sealed message: anything accepted must at least be
		// self-consistent with its own length header.
		if pt, err := NewChannel(key, "fuzz").Open(data); err == nil {
			if len(pt) != int(binary.BigEndian.Uint32(data[8:12])) {
				t.Fatalf("accepted message: plaintext %d bytes, header says %d",
					len(pt), binary.BigEndian.Uint32(data[8:12]))
			}
		}

		// Round trip: data as plaintext.
		sealed, err := NewChannel(key, "fuzz").Seal(data)
		if err != nil {
			t.Fatalf("seal: %v", err)
		}
		recv := NewChannel(key, "fuzz")
		pt, err := recv.Open(sealed)
		if err != nil {
			t.Fatalf("open of genuine sealed message: %v", err)
		}
		if !bytes.Equal(pt, data) {
			t.Fatalf("round trip changed plaintext: %q != %q", pt, data)
		}

		// Replay of the same sealed bytes on the same channel must fail.
		if _, err := recv.Open(sealed); err == nil {
			t.Fatal("replayed sealed message accepted")
		}

		// Any single-byte tamper must be rejected. The flip position is
		// derived from the input so the fuzzer explores header, nonce,
		// ciphertext and tag corruption.
		pos := len(data) % len(sealed)
		tampered := append([]byte(nil), sealed...)
		tampered[pos] ^= 0x41
		if _, err := NewChannel(key, "fuzz").Open(tampered); err == nil {
			t.Fatalf("tampered byte %d accepted", pos)
		}
	})
}
