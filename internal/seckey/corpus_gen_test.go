//go:build corpusgen

package seckey

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenSeckeyCorpus writes the committed seed corpus for FuzzSealedOpen.
// Because the fuzz input doubles as raw sealed bytes and as plaintext, the
// seeds include genuine Seal output (deterministic: the nonce is derived
// from key and sequence number) so the fuzzer starts past the MAC check
// with small mutations. Regenerate with:
//
//	go test -tags corpusgen -run TestGenSeckeyCorpus ./internal/seckey
func TestGenSeckeyCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSealedOpen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	key := fuzzChannelKey()
	sealedShort, err := NewChannel(key, "fuzz").Seal([]byte("GIOP request bytes"))
	if err != nil {
		t.Fatal(err)
	}
	sealedEmpty, err := NewChannel(key, "fuzz").Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Oversize length field: genuine sealed bytes whose plaintext-length
	// header (u32 at offset 8) claims 4 GiB. Open must reject the
	// length/buffer mismatch before allocating or MAC-ing.
	oversizeLen := append([]byte(nil), sealedShort...)
	oversizeLen[8], oversizeLen[9], oversizeLen[10], oversizeLen[11] = 0xFF, 0xFF, 0xFF, 0xFF
	seeds := [][]byte{
		nil,
		[]byte("increment(counter-1)"),
		sealedShort,
		sealedEmpty,
		make([]byte, 60), // minimum sealed length, all zero
		oversizeLen,
	}
	for i, seed := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
