// Package giop implements a General Inter-ORB Protocol (GIOP) style message
// layer with the ITDOS extensions described in the paper:
//
//   - every Request and Reply carries a strictly-increasing request
//     identifier used by voters to collate copies and match replies to
//     requests (paper §3.6);
//   - every Request carries the full interface repository name, which plain
//     GIOP omits, so that a process without an ORB (the Group Manager) can
//     unmarshal the body with the idl.Registry and vote on values
//     (paper §3.6).
//
// Messages are self-describing about byte order: the header flags carry the
// sender's endianness, so heterogeneous peers marshal in their native order.
package giop

import (
	"fmt"

	"itdos/internal/cdr"
)

// Magic is the 4-byte message prefix. ITDOS tunnels GIOP over its secure
// multicast, so the magic distinguishes middleware traffic from noise.
var Magic = [4]byte{'G', 'I', 'O', 'P'}

// Protocol version implemented by this package.
const (
	VersionMajor = 1
	VersionMinor = 2
)

// MsgType enumerates GIOP message types.
type MsgType byte

// GIOP message types used by ITDOS.
const (
	MsgRequest MsgType = iota + 1
	MsgReply
	MsgCancelRequest
	MsgCloseConnection
	MsgError
)

// String returns the GIOP name of the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgCloseConnection:
		return "CloseConnection"
	case MsgError:
		return "MessageError"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

// ReplyStatus reports the outcome of an invocation.
type ReplyStatus uint32

// Reply statuses, mirroring GIOP's reply_status enumeration.
const (
	StatusNoException ReplyStatus = iota
	StatusUserException
	StatusSystemException
)

// String returns the GIOP name of the status.
func (s ReplyStatus) String() string {
	switch s {
	case StatusNoException:
		return "NO_EXCEPTION"
	case StatusUserException:
		return "USER_EXCEPTION"
	case StatusSystemException:
		return "SYSTEM_EXCEPTION"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// Request is a GIOP Request with ITDOS extensions.
type Request struct {
	// RequestID is strictly increasing per connection; voters collate the
	// replicas' copies of a message by it.
	RequestID uint64

	// ObjectKey names the target object within the server process.
	ObjectKey string

	// Interface is the full interface repository name (ITDOS extension).
	Interface string

	// Operation is the operation name within the interface.
	Operation string

	// ResponseExpected is false for oneway operations.
	ResponseExpected bool

	// DigestOK marks a request whose sender accepts digest replies: the
	// designated responder returns the full reply, every other replica a
	// canonical-form digest (Castro–Liskov digest replies re-derived for
	// heterogeneous replicas). Carried in bit 1 of the response-flags octet,
	// which legacy encoders always wrote as 0 or 1 — so requests without the
	// flag are byte-identical to the pre-digest wire form.
	DigestOK bool

	// ReadOnly marks an invocation the client may multicast directly,
	// bypassing the ordering protocol (Castro–Liskov read-only
	// optimisation). Carried in bit 2 of the response-flags octet.
	ReadOnly bool

	// Body is the CDR-encoded input parameter list, marshalled in the byte
	// order of the enclosing message.
	Body []byte
}

// Request flag bits inside the response-flags octet. Bit 0 is the GIOP
// response_expected boolean; the upper bits are ITDOS extensions that
// legacy streams never set.
const (
	flagResponseExpected = 1 << 0
	flagDigestOK         = 1 << 1
	flagReadOnly         = 1 << 2
)

// flags packs the request's flag bits into the response-flags octet.
func (r *Request) flags() byte {
	var b byte
	if r.ResponseExpected {
		b |= flagResponseExpected
	}
	if r.DigestOK {
		b |= flagDigestOK
	}
	if r.ReadOnly {
		b |= flagReadOnly
	}
	return b
}

func (r *Request) setFlags(b byte) {
	r.ResponseExpected = b&flagResponseExpected != 0
	r.DigestOK = b&flagDigestOK != 0
	r.ReadOnly = b&flagReadOnly != 0
}

// Reply is a GIOP Reply with ITDOS extensions.
type Reply struct {
	// RequestID matches the Request this reply answers.
	RequestID uint64

	// Status is the invocation outcome.
	Status ReplyStatus

	// Exception carries the exception repository id / message when Status
	// is not StatusNoException.
	Exception string

	// Tentative marks a reply produced by speculative execution at the
	// prepared point of the ordering protocol (Castro–Liskov tentative
	// execution): the replica may still roll it back on a view change, so
	// clients only act on 2f+1 matching tentative replies. Carried in bit 1
	// of the header flags octet, which legacy encoders always wrote as the
	// byte-order bit alone — replies without the flag stay byte-identical.
	// Voters must not fold this bit into value comparison: a tentative and
	// a committed reply to the same request carry the same result.
	Tentative bool

	// Body is the CDR-encoded result list (empty on exception).
	Body []byte
}

// Message is a decoded GIOP message: exactly one of Request/Reply is
// non-nil depending on Type, except for bodyless control messages.
type Message struct {
	Type    MsgType
	Order   cdr.ByteOrder
	Request *Request
	Reply   *Reply

	// CancelID is the request id for MsgCancelRequest.
	CancelID uint64
}

const headerLen = 12

// Header flags octet bits. Bit 0 is the GIOP byte-order flag; bit 1 is the
// ITDOS tentative-reply extension (see Reply.Tentative), which legacy
// streams never set.
const (
	hdrFlagLittleEndian = 1 << 0
	hdrFlagTentative    = 1 << 1
)

// writeHeader fills a 12-byte header region in place:
// magic[4] | verMajor | verMinor | flags | msgType | size(u32)
// where flags bit0 is the byte-order flag, as in GIOP 1.1+.
func writeHeader(h []byte, order cdr.ByteOrder, flags byte, t MsgType, bodyLen int) {
	copy(h, Magic[:])
	h[4] = VersionMajor
	h[5] = VersionMinor
	h[6] = (byte(order) & 1) | flags
	h[7] = byte(t)
	// The size field is encoded in the sender's byte order, per GIOP.
	if order == cdr.LittleEndian {
		h[8] = byte(bodyLen)
		h[9] = byte(bodyLen >> 8)
		h[10] = byte(bodyLen >> 16)
		h[11] = byte(bodyLen >> 24)
	} else {
		h[8] = byte(bodyLen >> 24)
		h[9] = byte(bodyLen >> 16)
		h[10] = byte(bodyLen >> 8)
		h[11] = byte(bodyLen)
	}
}

// appendMessage reserves a header at the end of dst, runs body over the
// buffer (alignment relative to the body start), and patches the header —
// the zero-copy framing shared by every Append* encoder. A nil body
// appends a bodyless control message.
func appendMessage(dst []byte, order cdr.ByteOrder, flags byte, t MsgType, body func(e *cdr.Encoder)) []byte {
	hdr := len(dst)
	dst = append(dst, make([]byte, headerLen)...)
	e := cdr.NewEncoderOver(order, dst)
	if body != nil {
		body(e)
	}
	out := e.Bytes()
	writeHeader(out[hdr:hdr+headerLen], order, flags, t, e.Len())
	return out
}

// AppendRequest appends the encoded Request message to dst and returns the
// extended slice, encoding header and body in one pass with no
// intermediate copy. The output is byte-identical to EncodeRequest.
func AppendRequest(dst []byte, order cdr.ByteOrder, r *Request) []byte {
	return appendMessage(dst, order, 0, MsgRequest, func(e *cdr.Encoder) {
		e.WriteULongLong(r.RequestID)
		e.WriteString(r.ObjectKey)
		e.WriteString(r.Interface)
		e.WriteString(r.Operation)
		// The response-flags octet: bit 0 is response_expected (a plain CDR
		// boolean for legacy requests), bits 1-2 the ITDOS digest/read-only
		// extensions. A request without extensions encodes exactly as the old
		// WriteBoolean did.
		e.WriteOctet(r.flags())
		e.WriteOctets(r.Body)
	})
}

// AppendReply appends the encoded Reply message to dst and returns the
// extended slice; see AppendRequest.
func AppendReply(dst []byte, order cdr.ByteOrder, r *Reply) []byte {
	var flags byte
	if r.Tentative {
		flags |= hdrFlagTentative
	}
	return appendMessage(dst, order, flags, MsgReply, func(e *cdr.Encoder) {
		e.WriteULongLong(r.RequestID)
		e.WriteULong(uint32(r.Status))
		e.WriteString(r.Exception)
		e.WriteOctets(r.Body)
	})
}

// EncodeRequest marshals a Request message in the given byte order.
func EncodeRequest(order cdr.ByteOrder, r *Request) []byte {
	return AppendRequest(nil, order, r)
}

// EncodeReply marshals a Reply message in the given byte order.
func EncodeReply(order cdr.ByteOrder, r *Reply) []byte {
	return AppendReply(nil, order, r)
}

// EncodeCancelRequest marshals a CancelRequest for the given request id.
func EncodeCancelRequest(order cdr.ByteOrder, requestID uint64) []byte {
	return appendMessage(nil, order, 0, MsgCancelRequest, func(e *cdr.Encoder) {
		e.WriteULongLong(requestID)
	})
}

// EncodeCloseConnection marshals a CloseConnection message.
func EncodeCloseConnection(order cdr.ByteOrder) []byte {
	return appendMessage(nil, order, 0, MsgCloseConnection, nil)
}

// Decode parses one GIOP message from buf. It rejects malformed input with
// a descriptive error; Byzantine senders reach this code path, so nothing
// here may panic.
func Decode(buf []byte) (*Message, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("giop: message too short: %d bytes", len(buf))
	}
	if [4]byte(buf[:4]) != Magic {
		return nil, fmt.Errorf("giop: bad magic %q", buf[:4])
	}
	if buf[4] != VersionMajor || buf[5] > VersionMinor {
		return nil, fmt.Errorf("giop: unsupported version %d.%d", buf[4], buf[5])
	}
	order := cdr.ByteOrder(buf[6] & 1)
	t := MsgType(buf[7])
	var size uint32
	if order == cdr.LittleEndian {
		size = uint32(buf[8]) | uint32(buf[9])<<8 | uint32(buf[10])<<16 | uint32(buf[11])<<24
	} else {
		size = uint32(buf[8])<<24 | uint32(buf[9])<<16 | uint32(buf[10])<<8 | uint32(buf[11])
	}
	if int(size) != len(buf)-headerLen {
		return nil, fmt.Errorf("giop: size %d does not match body length %d",
			size, len(buf)-headerLen)
	}
	d := cdr.NewDecoder(buf[headerLen:], order)
	msg := &Message{Type: t, Order: order}
	switch t {
	case MsgRequest:
		req, err := decodeRequest(d)
		if err != nil {
			return nil, fmt.Errorf("giop: decode request: %w", err)
		}
		msg.Request = req
	case MsgReply:
		rep, err := decodeReply(d)
		if err != nil {
			return nil, fmt.Errorf("giop: decode reply: %w", err)
		}
		rep.Tentative = buf[6]&hdrFlagTentative != 0
		msg.Reply = rep
	case MsgCancelRequest:
		id, err := d.ReadULongLong()
		if err != nil {
			return nil, fmt.Errorf("giop: decode cancel: %w", err)
		}
		msg.CancelID = id
	case MsgCloseConnection, MsgError:
		// No body.
	default:
		return nil, fmt.Errorf("giop: unknown message type %d", byte(t))
	}
	return msg, nil
}

func decodeRequest(d *cdr.Decoder) (*Request, error) {
	var r Request
	var err error
	if r.RequestID, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	if r.ObjectKey, err = d.ReadString(); err != nil {
		return nil, err
	}
	if r.Interface, err = d.ReadString(); err != nil {
		return nil, err
	}
	if r.Operation, err = d.ReadString(); err != nil {
		return nil, err
	}
	flags, err := d.ReadOctet()
	if err != nil {
		return nil, err
	}
	r.setFlags(flags)
	body, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	// Copy: the decoder's buffer belongs to the transport.
	r.Body = append([]byte(nil), body...)
	return &r, nil
}

func decodeReply(d *cdr.Decoder) (*Reply, error) {
	var r Reply
	id, err := d.ReadULongLong()
	if err != nil {
		return nil, err
	}
	r.RequestID = id
	status, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if status > uint32(StatusSystemException) {
		return nil, fmt.Errorf("invalid reply status %d", status)
	}
	r.Status = ReplyStatus(status)
	if r.Exception, err = d.ReadString(); err != nil {
		return nil, err
	}
	body, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	r.Body = append([]byte(nil), body...)
	return &r, nil
}
