package giop

import (
	"bytes"
	"testing"

	"itdos/internal/cdr"
)

func TestRequestFlagsRoundTrip(t *testing.T) {
	for _, tc := range []struct{ re, dig, ro bool }{
		{false, false, false}, {true, false, false}, {true, true, false},
		{true, false, true}, {true, true, true}, {false, true, true},
	} {
		req := &Request{
			RequestID: 5, ObjectKey: "k", Interface: "IDL:I:1.0", Operation: "op",
			ResponseExpected: tc.re, DigestOK: tc.dig, ReadOnly: tc.ro,
		}
		msg, err := Decode(EncodeRequest(cdr.BigEndian, req))
		if err != nil {
			t.Fatal(err)
		}
		got := msg.Request
		if got.ResponseExpected != tc.re || got.DigestOK != tc.dig || got.ReadOnly != tc.ro {
			t.Fatalf("flags %+v round-tripped as RE=%v DigestOK=%v ReadOnly=%v",
				tc, got.ResponseExpected, got.DigestOK, got.ReadOnly)
		}
	}
}

// TestFlagOctetBackwardCompatible pins the wire discipline the fast paths
// rely on: the new flags live in the octet that legacy encoders wrote as
// exactly 0 or 1 for response_expected, so with both flags clear the
// encoding is byte-identical to the legacy stream, and setting a flag
// changes exactly that one octet.
func TestFlagOctetBackwardCompatible(t *testing.T) {
	base := &Request{
		RequestID: 9, ObjectKey: "k", Interface: "IDL:I:1.0", Operation: "op",
		ResponseExpected: true, Body: []byte{1, 2, 3},
	}
	plain := EncodeRequest(cdr.LittleEndian, base)

	flagged := *base
	flagged.DigestOK = true
	dig := EncodeRequest(cdr.LittleEndian, &flagged)
	if len(dig) != len(plain) {
		t.Fatalf("flag changed message length: %d vs %d", len(dig), len(plain))
	}
	diff := -1
	for i := range plain {
		if plain[i] != dig[i] {
			if diff != -1 {
				t.Fatalf("flag changed more than one octet: %d and %d", diff, i)
			}
			diff = i
		}
	}
	if diff == -1 {
		t.Fatal("DigestOK flag not encoded")
	}
	if plain[diff] != flagResponseExpected || dig[diff] != flagResponseExpected|flagDigestOK {
		t.Fatalf("flag octet %#x -> %#x, want %#x -> %#x",
			plain[diff], dig[diff], flagResponseExpected, flagResponseExpected|flagDigestOK)
	}

	ro := *base
	ro.ReadOnly = true
	roBuf := EncodeRequest(cdr.LittleEndian, &ro)
	if roBuf[diff] != flagResponseExpected|flagReadOnly {
		t.Fatalf("ReadOnly octet = %#x, want %#x", roBuf[diff], flagResponseExpected|flagReadOnly)
	}
	if !bytes.Equal(append(append([]byte{}, roBuf[:diff]...), roBuf[diff+1:]...),
		append(append([]byte{}, plain[:diff]...), plain[diff+1:]...)) {
		t.Fatal("ReadOnly changed octets beyond the flag octet")
	}
}
