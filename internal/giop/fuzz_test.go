package giop

import (
	"reflect"
	"testing"

	"itdos/internal/cdr"
)

// FuzzGIOPParse feeds arbitrary bytes to the GIOP message parser. Byzantine
// senders reach Decode directly, so it must reject malformed input with an
// error — never a panic or runaway allocation — and any message it does
// accept must survive an encode → decode round trip unchanged.
func FuzzGIOPParse(f *testing.F) {
	f.Add([]byte("GIOP"))
	f.Add(EncodeCloseConnection(cdr.BigEndian))
	f.Add(EncodeCancelRequest(cdr.LittleEndian, 7))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		var out []byte
		switch msg.Type {
		case MsgRequest:
			out = EncodeRequest(msg.Order, msg.Request)
		case MsgReply:
			out = EncodeReply(msg.Order, msg.Reply)
		case MsgCancelRequest:
			out = EncodeCancelRequest(msg.Order, msg.CancelID)
		case MsgCloseConnection:
			out = EncodeCloseConnection(msg.Order)
		default:
			// MsgError has no encoder; nothing to round-trip.
			return
		}
		msg2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", msg.Type, err)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("round trip changed message:\n  was %+v\n  now %+v", msg, msg2)
		}
	})
}
