package giop

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"itdos/internal/cdr"
)

func TestRequestRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		req := &Request{
			RequestID:        42,
			ObjectKey:        "bank/account-7",
			Interface:        "IDL:itdos/Bank:1.0",
			Operation:        "deposit",
			ResponseExpected: true,
			Body:             []byte{1, 2, 3, 4, 5},
		}
		buf := EncodeRequest(order, req)
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode (%s): %v", order, err)
		}
		if msg.Type != MsgRequest || msg.Order != order {
			t.Fatalf("type/order = %v/%v", msg.Type, msg.Order)
		}
		got := msg.Request
		if got.RequestID != req.RequestID || got.ObjectKey != req.ObjectKey ||
			got.Interface != req.Interface || got.Operation != req.Operation ||
			got.ResponseExpected != req.ResponseExpected ||
			!bytes.Equal(got.Body, req.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	for _, rep := range []*Reply{
		{RequestID: 7, Status: StatusNoException, Body: []byte{9, 9}},
		{RequestID: 8, Status: StatusUserException, Exception: "IDL:Overdrawn:1.0"},
		{RequestID: 9, Status: StatusSystemException, Exception: "OBJECT_NOT_EXIST"},
	} {
		buf := EncodeReply(cdr.LittleEndian, rep)
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		got := msg.Reply
		if got.RequestID != rep.RequestID || got.Status != rep.Status ||
			got.Exception != rep.Exception || !bytes.Equal(got.Body, rep.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
		}
	}
}

func TestControlMessages(t *testing.T) {
	msg, err := Decode(EncodeCancelRequest(cdr.BigEndian, 55))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgCancelRequest || msg.CancelID != 55 {
		t.Fatalf("cancel round trip: %+v", msg)
	}
	msg, err = Decode(EncodeCloseConnection(cdr.LittleEndian))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgCloseConnection {
		t.Fatalf("close round trip: %+v", msg)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := EncodeRequest(cdr.BigEndian, &Request{RequestID: 1, Operation: "op"})
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"bad magic": append([]byte("JUNK"), good[4:]...),
		"bad size":  append(append([]byte{}, good...), 0xFF),
		"truncated": good[:len(good)-2],
		"bad type": func() []byte {
			b := append([]byte{}, good...)
			b[7] = 99
			return b
		}(),
		"bad version": func() []byte {
			b := append([]byte{}, good...)
			b[4] = 9
			return b
		}(),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: malformed message accepted", name)
		}
	}
}

func TestDecodeRejectsBadReplyStatus(t *testing.T) {
	rep := EncodeReply(cdr.BigEndian, &Reply{RequestID: 1, Status: ReplyStatus(7)})
	if _, err := Decode(rep); err == nil || !strings.Contains(err.Error(), "status") {
		t.Fatalf("bad status accepted: %v", err)
	}
}

func TestCrossEndianDecode(t *testing.T) {
	// A big-endian receiver must decode a little-endian sender's message
	// (and vice versa) — the heterogeneity requirement.
	req := &Request{RequestID: 1 << 40, ObjectKey: "k", Interface: "I", Operation: "o"}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		msg, err := Decode(EncodeRequest(order, req))
		if err != nil {
			t.Fatalf("(%s): %v", order, err)
		}
		if msg.Request.RequestID != req.RequestID {
			t.Fatalf("(%s): id = %d", order, msg.Request.RequestID)
		}
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	prop := func(id uint64, key, iface, op string, resp bool, body []byte, little bool) bool {
		if strings.ContainsRune(key, 0) || strings.ContainsRune(iface, 0) ||
			strings.ContainsRune(op, 0) {
			return true // CDR strings are NUL-terminated; skip NUL inputs
		}
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		req := &Request{
			RequestID: id, ObjectKey: key, Interface: iface,
			Operation: op, ResponseExpected: resp, Body: body,
		}
		msg, err := Decode(EncodeRequest(order, req))
		if err != nil {
			return false
		}
		g := msg.Request
		return g.RequestID == id && g.ObjectKey == key && g.Interface == iface &&
			g.Operation == op && g.ResponseExpected == resp && bytes.Equal(g.Body, body)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Byzantine senders control every byte on the wire; Decode must return
	// errors, never panic, on arbitrary input.
	prop := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// And fuzz the header region of a valid message specifically.
	good := EncodeRequest(cdr.BigEndian, &Request{RequestID: 3, Operation: "x"})
	for i := 0; i < len(good); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte{}, good...)
			mut[i] ^= bit
			_, _ = Decode(mut)
		}
	}
}
