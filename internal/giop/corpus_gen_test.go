//go:build corpusgen

package giop

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"itdos/internal/cdr"
)

// TestGenGIOPCorpus writes the committed seed corpus for FuzzGIOPParse: one
// well-formed message of each type in each byte order, encoded by our own
// marshaller. Regenerate with:
//
//	go test -tags corpusgen -run TestGenGIOPCorpus ./internal/giop
func TestGenGIOPCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzGIOPParse")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	req := &Request{
		RequestID:        42,
		ObjectKey:        "counter-1",
		Interface:        "IDL:itdos/Counter:1.0",
		Operation:        "increment",
		ResponseExpected: true,
		Body:             []byte{0, 0, 0, 7},
	}
	rep := &Reply{
		RequestID: 42,
		Status:    StatusNoException,
		Body:      []byte{0, 0, 0, 8},
	}
	exc := &Reply{
		RequestID: 43,
		Status:    StatusSystemException,
		Exception: "IDL:omg.org/CORBA/NO_PERMISSION:1.0",
	}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		seeds := [][]byte{
			EncodeRequest(order, req),
			EncodeReply(order, rep),
			EncodeReply(order, exc),
			EncodeCancelRequest(order, 42),
			EncodeCloseConnection(order),
		}
		for i, seed := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%d-%s", i, order))
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Oversize length field: a valid message whose header size(u32) claims
	// 4 GiB. Decode must reject the size/buffer mismatch without trusting
	// the field (header layout: magic[4] | ver[2] | flags | msgType |
	// size(u32) at offset 8).
	oversize := EncodeRequest(cdr.BigEndian, req)
	oversize[8], oversize[9], oversize[10], oversize[11] = 0xFF, 0xFF, 0xFF, 0xFF
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", oversize)
	if err := os.WriteFile(filepath.Join(dir, "seed-oversize-size"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
