package giop

import (
	"bytes"
	"testing"

	"itdos/internal/cdr"
)

// TestAppendMatchesEncode pins the zero-copy framing: AppendRequest/
// AppendReply into a dirty prefixed buffer produce exactly the bytes
// EncodeRequest/EncodeReply produce standalone.
func TestAppendMatchesEncode(t *testing.T) {
	req := &Request{
		RequestID: 42, ObjectKey: "calc", Interface: "IDL:x/Calc:1.0",
		Operation: "add", ResponseExpected: true, Body: []byte{1, 2, 3, 4, 5},
	}
	rep := &Reply{RequestID: 42, Status: StatusNoException, Body: []byte{9, 8, 7}}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		prefix := []byte{0xAA, 0xBB, 0xCC}
		got := AppendRequest(append([]byte(nil), prefix...), order, req)
		want := EncodeRequest(order, req)
		if !bytes.Equal(got[:3], prefix) || !bytes.Equal(got[3:], want) {
			t.Fatalf("order %v: AppendRequest differs from EncodeRequest", order)
		}
		got = AppendReply(append([]byte(nil), prefix...), order, rep)
		want = EncodeReply(order, rep)
		if !bytes.Equal(got[:3], prefix) || !bytes.Equal(got[3:], want) {
			t.Fatalf("order %v: AppendReply differs from EncodeReply", order)
		}
	}
}

// TestTentativeFlagRoundTrip: the tentative bit rides the header flags
// octet, round-trips through Decode, and changes nothing else — the body
// bytes (what canonical voting digests see) are identical either way.
func TestTentativeFlagRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		committed := EncodeReply(order, &Reply{RequestID: 7, Body: []byte("r")})
		tentative := EncodeReply(order, &Reply{RequestID: 7, Body: []byte("r"), Tentative: true})
		if bytes.Equal(committed, tentative) {
			t.Fatal("tentative flag not encoded")
		}
		if !bytes.Equal(committed[headerLen:], tentative[headerLen:]) {
			t.Fatal("tentative flag leaked into the body bytes")
		}
		if committed[6]&hdrFlagTentative != 0 {
			t.Fatal("legacy reply carries the tentative bit")
		}
		msg, err := Decode(tentative)
		if err != nil {
			t.Fatal(err)
		}
		if !msg.Reply.Tentative {
			t.Fatal("tentative bit lost in Decode")
		}
		msg, err = Decode(committed)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Reply.Tentative {
			t.Fatal("committed reply decoded as tentative")
		}
	}
}
