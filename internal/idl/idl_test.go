package idl

import (
	"testing"

	"itdos/internal/cdr"
)

func buildCalc() *Interface {
	return NewInterface("IDL:Calc:1.0").
		Op("add",
			[]Param{{Name: "a", Type: cdr.Double}, {Name: "b", Type: cdr.Double}},
			[]Param{{Name: "sum", Type: cdr.Double}}).
		Op("noop", nil, nil)
}

func TestInterfaceOperations(t *testing.T) {
	it := buildCalc()
	op, err := it.Operation("add")
	if err != nil {
		t.Fatal(err)
	}
	if len(op.Params) != 2 || len(op.Results) != 1 {
		t.Fatalf("add signature: %d in, %d out", len(op.Params), len(op.Results))
	}
	if _, err := it.Operation("mul"); err == nil {
		t.Fatal("unknown operation resolved")
	}
	ops := it.Operations()
	if len(ops) != 2 || ops[0].Name != "add" || ops[1].Name != "noop" {
		t.Fatalf("operations = %v", ops)
	}
}

func TestParamsTypeCodes(t *testing.T) {
	it := buildCalc()
	op, _ := it.Operation("add")
	in := op.ParamsType()
	if in.Kind != cdr.KindStruct || len(in.Members) != 2 {
		t.Fatalf("params type = %s", in)
	}
	if in.Members[0].Name != "a" || in.Members[1].Name != "b" {
		t.Fatalf("member names: %+v", in.Members)
	}
	out := op.ResultsType()
	if len(out.Members) != 1 || out.Members[0].Type != cdr.Double {
		t.Fatalf("results type = %s", out)
	}
	// A parameter list marshals and unmarshals as one struct value.
	buf, err := cdr.Marshal(in, []cdr.Value{1.5, 2.5}, cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cdr.Unmarshal(in, buf, cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if v.([]cdr.Value)[1].(float64) != 2.5 {
		t.Fatalf("round trip = %v", v)
	}
	// Empty signatures produce empty structs.
	noop, _ := it.Operation("noop")
	if len(noop.ParamsType().Members) != 0 || len(noop.ResultsType().Members) != 0 {
		t.Fatal("noop signature not empty")
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := NewRegistry()
	reg.Register(buildCalc())
	if _, err := reg.Interface("IDL:Calc:1.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Interface("IDL:Nope:1.0"); err == nil {
		t.Fatal("unknown interface resolved")
	}
	op, err := reg.Lookup("IDL:Calc:1.0", "add")
	if err != nil || op.Name != "add" {
		t.Fatalf("lookup: %v, %v", op, err)
	}
	if _, err := reg.Lookup("IDL:Calc:1.0", "mul"); err == nil {
		t.Fatal("unknown op resolved")
	}
	if _, err := reg.Lookup("IDL:Nope:1.0", "add"); err == nil {
		t.Fatal("unknown interface op resolved")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "IDL:Calc:1.0" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegisterReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.Register(NewInterface("I").Op("v1", nil, nil))
	reg.Register(NewInterface("I").Op("v2", nil, nil))
	if _, err := reg.Lookup("I", "v1"); err == nil {
		t.Fatal("stale definition survived re-registration")
	}
	if _, err := reg.Lookup("I", "v2"); err != nil {
		t.Fatal(err)
	}
}

func TestDefineReplacesOperation(t *testing.T) {
	it := NewInterface("I").Op("op", nil, nil)
	it.Op("op", []Param{{Name: "x", Type: cdr.Long}}, nil)
	op, err := it.Operation("op")
	if err != nil || len(op.Params) != 1 {
		t.Fatalf("redefined op: %v, %v", op, err)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	reg.Register(buildCalc())
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				if _, err := reg.Lookup("IDL:Calc:1.0", "add"); err != nil {
					t.Error(err)
					return
				}
				reg.Names()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				reg.Register(NewInterface("IDL:Other:1.0").Op("x", nil, nil))
			}
		}(i)
	}
	for i := 0; i < 6; i++ {
		<-done
	}
}
