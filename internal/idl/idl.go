// Package idl provides runtime interface definitions: named interfaces,
// their operations, and operation signatures expressed as cdr.TypeCodes.
//
// A Registry is ITDOS's "marshalling engine" (paper §3.6): because ITDOS
// embeds the full interface name in every GIOP message (which plain GIOP
// does not carry), any process holding the Registry — in particular the
// Group Manager, which does not run an ORB — can unmarshal a raw message
// and vote on its values.
package idl

import (
	"fmt"
	"sort"
	"sync"

	"itdos/internal/cdr"
)

// Param is a named, typed operation parameter or result.
type Param struct {
	Name string
	Type *cdr.TypeCode
}

// Operation describes one IDL operation: its input parameters and its
// results (the return value plus any out parameters, flattened).
type Operation struct {
	Name    string
	Params  []Param
	Results []Param

	// ReadOnly declares that the operation does not modify object state, so
	// a client may invoke it over the unordered read-only fast path
	// (Castro–Liskov read-only optimisation). Equivalent to CORBA's
	// readonly attribute accessors. Misdeclaring a mutating operation
	// read-only forfeits linearizability for that operation.
	ReadOnly bool
}

// paramsTC builds a synthetic struct TypeCode covering a parameter list so
// the whole list can be marshalled, unmarshalled, and compared as one value.
func paramsTC(name string, params []Param) *cdr.TypeCode {
	members := make([]cdr.Member, len(params))
	for i, p := range params {
		members[i] = cdr.Member{Name: p.Name, Type: p.Type}
	}
	return cdr.StructOf(name, members...)
}

// ParamsType returns the TypeCode describing the operation's input
// parameter list as a single struct value.
func (op *Operation) ParamsType() *cdr.TypeCode {
	return paramsTC(op.Name+"/in", op.Params)
}

// ResultsType returns the TypeCode describing the operation's result list
// as a single struct value.
func (op *Operation) ResultsType() *cdr.TypeCode {
	return paramsTC(op.Name+"/out", op.Results)
}

// Interface is a named collection of operations, the unit a CORBA object
// reference points at.
type Interface struct {
	Name string
	ops  map[string]*Operation
}

// NewInterface creates an interface with the given repository name.
func NewInterface(name string) *Interface {
	return &Interface{Name: name, ops: make(map[string]*Operation)}
}

// Define adds an operation to the interface, replacing any previous
// operation of the same name, and returns the interface for chaining.
func (it *Interface) Define(op *Operation) *Interface {
	it.ops[op.Name] = op
	return it
}

// Op adds an operation built from parameter and result lists and returns
// the interface for chaining.
func (it *Interface) Op(name string, params, results []Param) *Interface {
	return it.Define(&Operation{Name: name, Params: params, Results: results})
}

// OpReadOnly adds a read-only operation (see Operation.ReadOnly) and
// returns the interface for chaining.
func (it *Interface) OpReadOnly(name string, params, results []Param) *Interface {
	return it.Define(&Operation{Name: name, Params: params, Results: results, ReadOnly: true})
}

// Operation looks up an operation by name.
func (it *Interface) Operation(name string) (*Operation, error) {
	op, ok := it.ops[name]
	if !ok {
		return nil, fmt.Errorf("idl: interface %s has no operation %q", it.Name, name)
	}
	return op, nil
}

// Operations returns the interface's operations sorted by name.
func (it *Interface) Operations() []*Operation {
	out := make([]*Operation, 0, len(it.ops))
	for _, op := range it.ops {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Registry maps interface names to definitions. It is safe for concurrent
// use. A Registry is distributed as configuration to every process in an
// ITDOS system, including the Group Manager.
type Registry struct {
	mu         sync.RWMutex
	interfaces map[string]*Interface
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{interfaces: make(map[string]*Interface)}
}

// Register adds an interface definition. Registering a name twice replaces
// the earlier definition.
func (r *Registry) Register(it *Interface) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.interfaces[it.Name] = it
}

// Interface looks up an interface by repository name.
func (r *Registry) Interface(name string) (*Interface, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	it, ok := r.interfaces[name]
	if !ok {
		return nil, fmt.Errorf("idl: unknown interface %q", name)
	}
	return it, nil
}

// Lookup resolves an (interface, operation) pair in one call.
func (r *Registry) Lookup(ifaceName, opName string) (*Operation, error) {
	it, err := r.Interface(ifaceName)
	if err != nil {
		return nil, err
	}
	return it.Operation(opName)
}

// Names returns the registered interface names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.interfaces))
	for name := range r.interfaces {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
