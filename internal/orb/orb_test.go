package orb

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"itdos/internal/cdr"
	"itdos/internal/giop"
	"itdos/internal/idl"
)

func calcRegistry() *idl.Registry {
	reg := idl.NewRegistry()
	reg.Register(idl.NewInterface("IDL:Calc:1.0").
		Op("add",
			[]idl.Param{{Name: "a", Type: cdr.Double}, {Name: "b", Type: cdr.Double}},
			[]idl.Param{{Name: "sum", Type: cdr.Double}}).
		Op("div",
			[]idl.Param{{Name: "a", Type: cdr.Double}, {Name: "b", Type: cdr.Double}},
			[]idl.Param{{Name: "quot", Type: cdr.Double}}))
	return reg
}

type calcServant struct{}

func (calcServant) Invoke(ctx *CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
	a := args[0].(float64)
	b := args[1].(float64)
	switch op {
	case "add":
		return []cdr.Value{a + b}, nil
	case "div":
		if b == 0 {
			return nil, &UserException{Name: "IDL:Calc/DivideByZero:1.0"}
		}
		return []cdr.Value{a / b}, nil
	}
	return nil, ErrBadOperation
}

func newCalcAdapter(t *testing.T) *Adapter {
	t.Helper()
	a := NewAdapter(calcRegistry())
	if err := a.Register("calc-1", "IDL:Calc:1.0", calcServant{}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDispatchValues(t *testing.T) {
	a := newCalcAdapter(t)
	rep := a.DispatchValues("calc-1", "IDL:Calc:1.0", "add", 5,
		[]cdr.Value{2.0, 3.0}, nil, cdr.LittleEndian)
	if rep.Status != giop.StatusNoException {
		t.Fatalf("status = %v (%s)", rep.Status, rep.Exception)
	}
	res, err := cdr.Unmarshal(mustOp(t, "add").ResultsType(), rep.Body, cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.([]cdr.Value)[0].(float64); got != 5.0 {
		t.Fatalf("sum = %v", got)
	}
	if rep.RequestID != 5 {
		t.Fatalf("request id = %d", rep.RequestID)
	}
}

func mustOp(t *testing.T, name string) *idl.Operation {
	t.Helper()
	op, err := calcRegistry().Lookup("IDL:Calc:1.0", name)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestUserExceptionMapsToUserStatus(t *testing.T) {
	a := newCalcAdapter(t)
	rep := a.DispatchValues("calc-1", "IDL:Calc:1.0", "div", 1,
		[]cdr.Value{1.0, 0.0}, nil, cdr.BigEndian)
	if rep.Status != giop.StatusUserException {
		t.Fatalf("status = %v", rep.Status)
	}
	if rep.Exception != "IDL:Calc/DivideByZero:1.0" {
		t.Fatalf("exception = %q", rep.Exception)
	}
}

func TestDispatchErrors(t *testing.T) {
	a := newCalcAdapter(t)
	cases := []struct {
		name    string
		key     string
		iface   string
		op      string
		args    []cdr.Value
		wantSub string
	}{
		{"unknown object", "nope", "IDL:Calc:1.0", "add", []cdr.Value{1.0, 2.0}, "OBJECT_NOT_EXIST"},
		{"unknown op", "calc-1", "IDL:Calc:1.0", "mul", []cdr.Value{1.0, 2.0}, "BAD_OPERATION"},
		{"wrong iface", "calc-1", "IDL:Other:1.0", "add", []cdr.Value{1.0, 2.0}, "INTERFACE_MISMATCH"},
		{"wrong arity", "calc-1", "IDL:Calc:1.0", "add", []cdr.Value{1.0}, "BAD_PARAM"},
	}
	for _, c := range cases {
		rep := a.DispatchValues(c.key, c.iface, c.op, 1, c.args, nil, cdr.BigEndian)
		if rep.Status != giop.StatusSystemException || !strings.Contains(rep.Exception, c.wantSub) {
			t.Errorf("%s: status=%v exception=%q", c.name, rep.Status, rep.Exception)
		}
	}
}

func TestDispatchRawRequestCrossEndian(t *testing.T) {
	a := newCalcAdapter(t)
	op := mustOp(t, "add")
	body, err := cdr.Marshal(op.ParamsType(), []cdr.Value{10.0, 32.0}, cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	req := &giop.Request{
		RequestID: 9, ObjectKey: "calc-1", Interface: "IDL:Calc:1.0",
		Operation: "add", ResponseExpected: true, Body: body,
	}
	rep := a.Dispatch(req, cdr.LittleEndian, nil, cdr.BigEndian)
	if rep.Status != giop.StatusNoException {
		t.Fatalf("status=%v exception=%q", rep.Status, rep.Exception)
	}
	res, err := cdr.Unmarshal(op.ResultsType(), rep.Body, cdr.BigEndian)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.([]cdr.Value)[0].(float64); got != 42.0 {
		t.Fatalf("sum = %v", got)
	}
}

// loopProtocol short-circuits invocations to a local adapter, modelling a
// plain (non-replicated) transport for client ORB tests.
type loopProtocol struct {
	adapter *Adapter
	order   cdr.ByteOrder
}

func (p loopProtocol) Invoke(ref ObjectRef, req *giop.Request) (*giop.Reply, cdr.ByteOrder, error) {
	rep := p.adapter.Dispatch(req, cdr.BigEndian, nil, p.order)
	return rep, p.order, nil
}

func TestClientCallEndToEnd(t *testing.T) {
	a := newCalcAdapter(t)
	// Server replies little-endian; client marshals big-endian.
	cli := NewClient(calcRegistry(), loopProtocol{adapter: a, order: cdr.LittleEndian}, cdr.BigEndian)
	ref := ObjectRef{Domain: "calc", ObjectKey: "calc-1", Interface: "IDL:Calc:1.0"}
	res, err := cli.Call(ref, "add", []cdr.Value{20.0, 22.0})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 42.0 {
		t.Fatalf("result = %v", res)
	}

	_, err = cli.Call(ref, "div", []cdr.Value{1.0, 0.0})
	var ue *UserException
	if !errors.As(err, &ue) || ue.Name != "IDL:Calc/DivideByZero:1.0" {
		t.Fatalf("err = %v", err)
	}

	if _, err := cli.Call(ref, "add", []cdr.Value{1.0}); err == nil {
		t.Fatal("arity error not caught client-side")
	}
	if _, err := cli.Call(ref, "nope", nil); err == nil {
		t.Fatal("unknown op not caught client-side")
	}
}

func TestServantDeterminismAcrossAdapters(t *testing.T) {
	// Two adapters (two replicas) given the same invocation stream produce
	// byte-different replies in their own byte orders that unmarshal to
	// equal values — the heterogeneity invariant end to end.
	a1 := newCalcAdapter(t)
	a2 := newCalcAdapter(t)
	op := mustOp(t, "add")
	for i := 0; i < 10; i++ {
		args := []cdr.Value{float64(i), float64(i * 2)}
		r1 := a1.DispatchValues("calc-1", "IDL:Calc:1.0", "add", uint64(i), args, nil, cdr.BigEndian)
		r2 := a2.DispatchValues("calc-1", "IDL:Calc:1.0", "add", uint64(i), args, nil, cdr.LittleEndian)
		v1, err := cdr.Unmarshal(op.ResultsType(), r1.Body, cdr.BigEndian)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := cdr.Unmarshal(op.ResultsType(), r2.Body, cdr.LittleEndian)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := cdr.EqualValues(op.ResultsType(), v1, v2, nil)
		if err != nil || !eq {
			t.Fatalf("iteration %d: replicas disagree: %v vs %v", i, v1, v2)
		}
	}
}

func TestObjectRefString(t *testing.T) {
	ref := ObjectRef{Domain: "bank", ObjectKey: "acct-1", Interface: "IDL:Bank:1.0"}
	want := "itdos://bank/acct-1#IDL:Bank:1.0"
	if got := fmt.Sprint(ref); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRegisterUnknownInterfaceFails(t *testing.T) {
	a := NewAdapter(calcRegistry())
	if err := a.Register("x", "IDL:Missing:1.0", calcServant{}); err == nil {
		t.Fatal("unknown interface accepted")
	}
}
