// Package orb is a minimal CORBA-style Object Request Broker: object
// references, servants, an object adapter, and a pluggable protocol
// framework in the spirit of TAO's (paper §3.3, [27]).
//
// ITDOS integrates with the ORB exactly where TAO's pluggable protocols
// would: the SMIOP transport (internal/replica) implements Protocol, so
// application code sees ordinary synchronous invocations while requests
// travel through voting, encryption and BFT multicast underneath.
package orb

import (
	"errors"
	"fmt"
	"sort"

	"itdos/internal/cdr"
	"itdos/internal/giop"
	"itdos/internal/idl"
	"itdos/internal/obs"
)

// ObjectRef names a CORBA object: the replication domain hosting it, the
// object key within the server process, and the interface it implements.
// ITDOS object references address a whole replication domain — replication
// granularity is the server process, not the object (paper §3.4).
type ObjectRef struct {
	Domain    string
	ObjectKey string
	Interface string
}

// String renders the reference IOR-style.
func (r ObjectRef) String() string {
	return fmt.Sprintf("itdos://%s/%s#%s", r.Domain, r.ObjectKey, r.Interface)
}

// Caller issues nested invocations on behalf of a servant. Inside an
// ITDOS replication domain element, Call blocks the ORB thread while the
// delivery thread keeps running — the paper's two-thread model (§3.1).
type Caller interface {
	Call(ref ObjectRef, op string, args []cdr.Value) ([]cdr.Value, error)
}

// CallContext carries per-invocation information to a servant.
type CallContext struct {
	ObjectKey string
	Interface string
	Operation string
	RequestID uint64
	// Caller lets the servant invoke other objects through the
	// middleware. Nil when the runtime does not support nesting.
	Caller Caller
}

// Servant is an application object implementation. Implementations must
// be deterministic (paper §2): same invocation sequence, same results.
type Servant interface {
	Invoke(ctx *CallContext, op string, args []cdr.Value) ([]cdr.Value, error)
}

// ServantFunc adapts a function to Servant.
type ServantFunc func(ctx *CallContext, op string, args []cdr.Value) ([]cdr.Value, error)

// Invoke implements Servant.
func (f ServantFunc) Invoke(ctx *CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
	return f(ctx, op, args)
}

// UserException is a declared application-level exception: it maps to a
// GIOP USER_EXCEPTION reply rather than a system exception.
type UserException struct {
	Name string
}

// Error implements error.
func (e *UserException) Error() string { return e.Name }

// ErrObjectNotExist is returned for unknown object keys (CORBA
// OBJECT_NOT_EXIST).
var ErrObjectNotExist = errors.New("OBJECT_NOT_EXIST")

// ErrBadOperation is returned for unknown operations (CORBA BAD_OPERATION).
var ErrBadOperation = errors.New("BAD_OPERATION")

type registration struct {
	servant Servant
	iface   *idl.Interface
}

// Adapter is the object adapter: it maps object keys to servants and
// dispatches unmarshalled requests. It is driven from the single ORB
// thread of a replication domain element and is therefore not locked.
type Adapter struct {
	registry *idl.Registry
	objects  map[string]registration

	// ResultTransform, if set, post-processes successful results before
	// marshalling. The replica runtime uses it to apply platform float
	// divergence (heterogeneous FPUs/math libraries produce slightly
	// different floating-point results — the reason ITDOS needs inexact
	// voting, paper §3.6).
	ResultTransform func(op *idl.Operation, results []cdr.Value) []cdr.Value
}

// NewAdapter builds an adapter resolving interfaces in registry.
func NewAdapter(registry *idl.Registry) *Adapter {
	return &Adapter{registry: registry, objects: make(map[string]registration)}
}

// Register binds a servant to an object key under an interface name that
// must exist in the registry.
func (a *Adapter) Register(objectKey, ifaceName string, s Servant) error {
	iface, err := a.registry.Interface(ifaceName)
	if err != nil {
		return fmt.Errorf("orb: register %q: %w", objectKey, err)
	}
	a.objects[objectKey] = registration{servant: s, iface: iface}
	return nil
}

// ObjectKeys returns the registered object keys, sorted.
func (a *Adapter) ObjectKeys() []string {
	keys := make([]string, 0, len(a.objects))
	for k := range a.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Registry returns the adapter's interface registry.
func (a *Adapter) Registry() *idl.Registry { return a.registry }

// DispatchValues invokes the servant for objectKey with already
// unmarshalled arguments and returns the marshalled GIOP reply in
// replyOrder (the element's native byte order — heterogeneous replicas
// reply in different orders, which is the point).
func (a *Adapter) DispatchValues(objectKey, ifaceName, op string, requestID uint64,
	args []cdr.Value, caller Caller, replyOrder cdr.ByteOrder) *giop.Reply {

	reg, ok := a.objects[objectKey]
	if !ok {
		return systemException(requestID, ErrObjectNotExist.Error())
	}
	if reg.iface.Name != ifaceName {
		return systemException(requestID,
			fmt.Sprintf("INTERFACE_MISMATCH: object %q implements %s", objectKey, reg.iface.Name))
	}
	opDef, err := reg.iface.Operation(op)
	if err != nil {
		return systemException(requestID, ErrBadOperation.Error())
	}
	if len(args) != len(opDef.Params) {
		return systemException(requestID,
			fmt.Sprintf("BAD_PARAM: %s.%s takes %d arguments, got %d",
				ifaceName, op, len(opDef.Params), len(args)))
	}
	ctx := &CallContext{
		ObjectKey: objectKey, Interface: ifaceName, Operation: op,
		RequestID: requestID, Caller: caller,
	}
	results, err := reg.servant.Invoke(ctx, op, args)
	if err != nil {
		var ue *UserException
		if errors.As(err, &ue) {
			return &giop.Reply{
				RequestID: requestID,
				Status:    giop.StatusUserException,
				Exception: ue.Name,
			}
		}
		return systemException(requestID, err.Error())
	}
	if len(results) != len(opDef.Results) {
		return systemException(requestID,
			fmt.Sprintf("MARSHAL: %s.%s returns %d results, servant produced %d",
				ifaceName, op, len(opDef.Results), len(results)))
	}
	if a.ResultTransform != nil {
		results = a.ResultTransform(opDef, results)
	}
	body, err := cdr.Marshal(opDef.ResultsType(), results, replyOrder)
	if err != nil {
		return systemException(requestID, fmt.Sprintf("MARSHAL: %v", err))
	}
	return &giop.Reply{RequestID: requestID, Status: giop.StatusNoException, Body: body}
}

// Dispatch unmarshals a raw GIOP request (in its sender's byte order) and
// dispatches it.
func (a *Adapter) Dispatch(req *giop.Request, reqOrder cdr.ByteOrder,
	caller Caller, replyOrder cdr.ByteOrder) *giop.Reply {

	opDef, err := a.registry.Lookup(req.Interface, req.Operation)
	if err != nil {
		return systemException(req.RequestID, ErrBadOperation.Error())
	}
	args, err := cdr.Unmarshal(opDef.ParamsType(), req.Body, reqOrder)
	if err != nil {
		return systemException(req.RequestID, fmt.Sprintf("MARSHAL: %v", err))
	}
	argList, ok := args.([]cdr.Value)
	if !ok {
		return systemException(req.RequestID, "MARSHAL: parameter list is not a struct")
	}
	return a.DispatchValues(req.ObjectKey, req.Interface, req.Operation,
		req.RequestID, argList, caller, replyOrder)
}

func systemException(requestID uint64, msg string) *giop.Reply {
	return &giop.Reply{
		RequestID: requestID,
		Status:    giop.StatusSystemException,
		Exception: msg,
	}
}

// Protocol is the pluggable transport interface, mirroring TAO's pluggable
// protocol framework: the ORB hands a marshalled request to the protocol
// and blocks for the (voted) reply. The returned byte order is the order
// the reply body was marshalled in (GIOP carries it in the message header;
// it travels alongside the decoded reply here).
type Protocol interface {
	// Invoke sends req to the object's domain and returns the agreed
	// reply. It runs on the calling (ORB) thread and may block.
	Invoke(ref ObjectRef, req *giop.Request) (*giop.Reply, cdr.ByteOrder, error)
}

// Client is the client-side ORB: typed invocation over a Protocol.
type Client struct {
	registry *idl.Registry
	protocol Protocol
	order    cdr.ByteOrder

	// Tracer, if set, wraps each Call in an "invoke" span with
	// orb.marshal / orb.unmarshal children (Fig. 2 top layer). Metrics, if
	// set, counts calls and call errors. Both are nil-safe.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// NewClient builds a client ORB marshalling in the platform's byte order.
func NewClient(registry *idl.Registry, protocol Protocol, order cdr.ByteOrder) *Client {
	return &Client{registry: registry, protocol: protocol, order: order}
}

// Call invokes op on the referenced object and returns the unmarshalled
// results. GIOP exceptions surface as errors: *UserException for declared
// exceptions, generic errors for system exceptions.
func (c *Client) Call(ref ObjectRef, op string, args []cdr.Value) (results []cdr.Value, err error) {
	sp := c.Tracer.Start("invoke", "op="+ref.Interface+"."+op, "domain="+ref.Domain)
	defer sp.End()
	c.Metrics.Counter("orb_calls_total").Inc()
	defer func() {
		if err != nil {
			c.Metrics.Counter("orb_call_errors_total").Inc()
		}
	}()

	opDef, err := c.registry.Lookup(ref.Interface, op)
	if err != nil {
		return nil, err
	}
	if len(args) != len(opDef.Params) {
		return nil, fmt.Errorf("orb: %s.%s takes %d arguments, got %d",
			ref.Interface, op, len(opDef.Params), len(args))
	}
	msp := c.Tracer.Start("orb.marshal")
	body, err := cdr.Marshal(opDef.ParamsType(), args, c.order)
	msp.End()
	if err != nil {
		return nil, fmt.Errorf("orb: marshal %s.%s: %w", ref.Interface, op, err)
	}
	req := &giop.Request{
		ObjectKey:        ref.ObjectKey,
		Interface:        ref.Interface,
		Operation:        op,
		ResponseExpected: true,
		// The protocol decides whether to honour the read-only fast path;
		// the transport clears the flag when the feature is disabled so
		// legacy wire streams stay byte-identical.
		ReadOnly: opDef.ReadOnly,
		Body:     body,
	}
	reply, order, err := c.protocol.Invoke(ref, req)
	if err != nil {
		return nil, err
	}
	switch reply.Status {
	case giop.StatusUserException:
		return nil, &UserException{Name: reply.Exception}
	case giop.StatusSystemException:
		return nil, fmt.Errorf("orb: system exception: %s", reply.Exception)
	}
	usp := c.Tracer.Start("orb.unmarshal")
	decoded, err := cdr.Unmarshal(opDef.ResultsType(), reply.Body, order)
	usp.End()
	if err != nil {
		return nil, fmt.Errorf("orb: unmarshal %s.%s results: %w", ref.Interface, op, err)
	}
	list, ok := decoded.([]cdr.Value)
	if !ok {
		return nil, fmt.Errorf("orb: result list is not a struct")
	}
	return list, nil
}
