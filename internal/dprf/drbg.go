package dprf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// CommonInput generates the "common non-repeating value" each Group
// Manager element feeds the distributed PRF (paper §3.5). The paper
// initialises per-element pseudo-random number generators from a
// distributed random number generation process and periodically reseeds
// them; because the GM elements consume inputs in the total order imposed
// by their own Castro–Liskov transport, every correct element produces the
// same input sequence.
//
// The generator is an HMAC-SHA256 chain (HMAC-DRBG-like): deterministic,
// non-repeating, and forward-secure under reseeding.
type CommonInput struct {
	key     []byte
	counter uint64
}

// NewCommonInput seeds a generator. All elements of a Group Manager domain
// are configured with the same seed (the output of the distributed RNG the
// paper describes; a configuration secret stands in here).
func NewCommonInput(seed []byte) *CommonInput {
	mac := hmac.New(sha256.New, seed)
	mac.Write([]byte("common-input-init"))
	return &CommonInput{key: mac.Sum(nil)}
}

// Next returns the next common input, bound to a context string (e.g. the
// client/server domain pair a key is being generated for). Inputs never
// repeat: a strictly increasing counter is folded into every output.
func (g *CommonInput) Next(context string) []byte {
	g.counter++
	mac := hmac.New(sha256.New, g.key)
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], g.counter)
	mac.Write(ctr[:])
	mac.Write([]byte(context))
	out := mac.Sum(nil)
	// Ratchet the chain key so past inputs cannot be recomputed from a
	// later compromise.
	next := hmac.New(sha256.New, g.key)
	next.Write([]byte("ratchet"))
	next.Write(ctr[:])
	g.key = next.Sum(nil)
	return out
}

// Reseed folds fresh entropy into the chain (periodic re-initialisation,
// paper §3.5).
func (g *CommonInput) Reseed(entropy []byte) {
	mac := hmac.New(sha256.New, g.key)
	mac.Write([]byte("reseed"))
	mac.Write(entropy)
	g.key = mac.Sum(nil)
}

// Counter returns how many inputs have been generated.
func (g *CommonInput) Counter() uint64 { return g.counter }
