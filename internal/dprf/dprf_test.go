package dprf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSubsetsEnumeration(t *testing.T) {
	cases := []struct {
		n, f, want int
	}{
		{4, 1, 4}, {7, 2, 21}, {10, 3, 120}, {4, 0, 1}, {5, 5, 1},
	}
	for _, c := range cases {
		got := Subsets(c.n, c.f)
		if len(got) != c.want {
			t.Errorf("C(%d,%d) = %d subsets, want %d", c.n, c.f, len(got), c.want)
		}
	}
	// Lexicographic order and uniqueness for a concrete case.
	s := Subsets(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if fmt.Sprint(s) != fmt.Sprint(want) {
		t.Fatalf("subsets(4,2) = %v", s)
	}
}

func TestPartyHoldsComplementSubsets(t *testing.T) {
	params := Params{N: 4, F: 1}
	parties, err := Setup(params, []byte("master"))
	if err != nil {
		t.Fatal(err)
	}
	subsets := Subsets(4, 1)
	for _, p := range parties {
		for _, sid := range p.HeldSubsets() {
			for _, m := range subsets[sid] {
				if m == p.ID() {
					t.Fatalf("party %d holds subset %v containing itself", p.ID(), subsets[sid])
				}
			}
		}
		if got, want := len(p.HeldSubsets()), 3; got != want {
			t.Fatalf("party %d holds %d subsets, want %d", p.ID(), got, want)
		}
	}
}

func TestCombineMatchesDirectEval(t *testing.T) {
	for _, nf := range []struct{ n, f int }{{4, 1}, {7, 2}, {3, 1}} {
		params := Params{N: nf.n, F: nf.f}
		master := []byte("master-secret")
		parties, err := Setup(params, master)
		if err != nil {
			t.Fatal(err)
		}
		x := []byte("common-input-1")
		shares := make([]*Share, 0, params.Quorum())
		for i := 0; i < params.Quorum(); i++ {
			shares = append(shares, parties[i].EvalShare(x))
		}
		got, corrupt, err := Combine(params, shares)
		if err != nil {
			t.Fatalf("n=%d f=%d: %v", nf.n, nf.f, err)
		}
		if len(corrupt) != 0 {
			t.Fatalf("honest run flagged corrupt parties: %v", corrupt)
		}
		want, err := Eval(params, master, x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("combined value != direct eval")
		}
	}
}

func TestAllQuorumsAgree(t *testing.T) {
	params := Params{N: 4, F: 1}
	parties, _ := Setup(params, []byte("m"))
	x := []byte("input")
	// Every 3-of-4 quorum reconstructs the same value.
	var ref *Value
	for _, excl := range []int{0, 1, 2, 3} {
		var shares []*Share
		for i, p := range parties {
			if i == excl {
				continue
			}
			shares = append(shares, p.EvalShare(x))
		}
		v, _, err := Combine(params, shares)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = &v
		} else if v != *ref {
			t.Fatalf("quorum excluding %d reconstructed a different key", excl)
		}
	}
}

func TestFCorruptPartiesCannotReconstruct(t *testing.T) {
	// The corrupt coalition holds every subset key except k_C where C is
	// the coalition itself — their pooled knowledge misses exactly one
	// HMAC term, so they cannot compute F(x). We verify the structural
	// property: some subset has no holder within the coalition.
	params := Params{N: 4, F: 1}
	parties, _ := Setup(params, []byte("m"))
	subsets := Subsets(params.N, params.F)
	for _, corrupt := range []int{0, 1, 2, 3} {
		held := make(map[SubsetID]bool)
		for _, sid := range parties[corrupt].HeldSubsets() {
			held[sid] = true
		}
		missing := 0
		for sid := range subsets {
			if !held[SubsetID(sid)] {
				missing++
			}
		}
		if missing == 0 {
			t.Fatalf("corrupt party %d holds every subset key", corrupt)
		}
	}
	// And combining only f shares fails.
	shares := []*Share{parties[0].EvalShare([]byte("x"))}
	if _, _, err := Combine(params, shares); err == nil {
		t.Fatal("combine with f shares should fail")
	}
}

func TestCorruptShareDetectedAndMasked(t *testing.T) {
	params := Params{N: 4, F: 1}
	master := []byte("m")
	parties, _ := Setup(params, master)
	x := []byte("x")
	shares := []*Share{
		parties[0].EvalShare(x),
		parties[1].EvalShare(x),
		parties[2].EvalShare(x),
		parties[3].EvalShare(x),
	}
	// Party 2 lies about every value it reports.
	for sid, v := range shares[2].Vals {
		v[0] ^= 0xFF
		shares[2].Vals[sid] = v
	}
	got, corrupt, err := Combine(params, shares)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Eval(params, master, x)
	if got != want {
		t.Fatal("corrupt share changed the combined key")
	}
	if len(corrupt) != 1 || corrupt[0] != 2 {
		t.Fatalf("corrupt = %v, want [2]", corrupt)
	}
}

func TestOmittedValuesFlagged(t *testing.T) {
	params := Params{N: 4, F: 1}
	parties, _ := Setup(params, []byte("m"))
	x := []byte("x")
	shares := []*Share{
		parties[0].EvalShare(x),
		parties[1].EvalShare(x),
		parties[2].EvalShare(x),
		parties[3].EvalShare(x),
	}
	// Party 1 withholds the value for subset {0} (which it must hold).
	subsetZero := func() SubsetID {
		for sid, members := range Subsets(params.N, params.F) {
			if len(members) == 1 && members[0] == 0 {
				return SubsetID(sid)
			}
		}
		t.Fatal("subset {0} not found")
		return 0
	}()
	delete(shares[1].Vals, subsetZero)
	_, corrupt, err := Combine(params, shares)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 1 || corrupt[0] != 1 {
		t.Fatalf("corrupt = %v, want [1]", corrupt)
	}

	// With only a bare 2f+1 quorum {0,1,2}, withholding subset {0} leaves
	// a single reporter (party 2) for it — below f+1, so the subset is
	// unverifiable and Combine must fail loudly rather than guess.
	bare := []*Share{
		parties[0].EvalShare(x),
		parties[1].EvalShare(x),
		parties[2].EvalShare(x),
	}
	delete(bare[1].Vals, subsetZero)
	if _, _, err := Combine(params, bare); err == nil {
		t.Fatal("unverifiable subset silently combined")
	}
}

func TestOverclaimedSubsetFlagged(t *testing.T) {
	params := Params{N: 4, F: 1}
	parties, _ := Setup(params, []byte("m"))
	x := []byte("x")
	shares := []*Share{
		parties[0].EvalShare(x),
		parties[1].EvalShare(x),
		parties[2].EvalShare(x),
	}
	// Party 0 claims a value for the subset {0}, which it cannot hold.
	subsets := Subsets(params.N, params.F)
	for sid, members := range subsets {
		if len(members) == 1 && members[0] == 0 {
			shares[0].Vals[SubsetID(sid)] = Value{1, 2, 3}
		}
	}
	_, corrupt, err := Combine(params, shares)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range corrupt {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("overclaiming party not flagged: %v", corrupt)
	}
}

func TestDuplicateShareRejected(t *testing.T) {
	params := Params{N: 4, F: 1}
	parties, _ := Setup(params, []byte("m"))
	x := []byte("x")
	s := parties[0].EvalShare(x)
	if _, _, err := Combine(params, []*Share{s, s, parties[1].EvalShare(x)}); err == nil {
		t.Fatal("duplicate share accepted")
	}
}

func TestDifferentInputsDifferentKeys(t *testing.T) {
	params := Params{N: 4, F: 1}
	master := []byte("m")
	a, _ := Eval(params, master, []byte("input-a"))
	b, _ := Eval(params, master, []byte("input-b"))
	if a == b {
		t.Fatal("different inputs produced the same key")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{N: 0, F: 0}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 2, F: 1}).Validate(); err == nil {
		t.Error("n < 2f+1 accepted")
	}
	if err := (Params{N: 4, F: -1}).Validate(); err == nil {
		t.Error("negative f accepted")
	}
}

func TestCommonInputDeterministicAndNonRepeating(t *testing.T) {
	a := NewCommonInput([]byte("seed"))
	b := NewCommonInput([]byte("seed"))
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		x := a.Next("ctx")
		y := b.Next("ctx")
		if string(x) != string(y) {
			t.Fatal("same seed and order produced different inputs")
		}
		if seen[string(x)] {
			t.Fatal("common input repeated")
		}
		seen[string(x)] = true
	}
	if a.Counter() != 100 {
		t.Fatalf("counter = %d", a.Counter())
	}
}

func TestCommonInputContextSeparation(t *testing.T) {
	a := NewCommonInput([]byte("seed"))
	b := NewCommonInput([]byte("seed"))
	if string(a.Next("ctx-1")) == string(b.Next("ctx-2")) {
		t.Fatal("different contexts produced the same input")
	}
}

func TestCommonInputReseedDiverges(t *testing.T) {
	a := NewCommonInput([]byte("seed"))
	b := NewCommonInput([]byte("seed"))
	a.Reseed([]byte("entropy"))
	if string(a.Next("ctx")) == string(b.Next("ctx")) {
		t.Fatal("reseed had no effect")
	}
}

func TestQuickCombineToleratesAnyFCorruptions(t *testing.T) {
	params := Params{N: 7, F: 2}
	master := []byte("master")
	parties, err := Setup(params, master)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Eval(params, master, []byte("x"))
	prop := func(c1, c2 uint8, flip byte) bool {
		corrupt1, corrupt2 := int(c1)%7, int(c2)%7
		shares := make([]*Share, 0, 7)
		for _, p := range parties {
			s := p.EvalShare([]byte("x"))
			if p.ID() == corrupt1 || p.ID() == corrupt2 {
				for sid, v := range s.Vals {
					v[3] ^= flip | 1
					s.Vals[sid] = v
				}
			}
			shares = append(shares, s)
		}
		got, corrupt, err := Combine(params, shares)
		if err != nil || got != want {
			return false
		}
		for _, id := range corrupt {
			if id != corrupt1 && id != corrupt2 {
				return false // honest party falsely accused
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
