package dprf

import (
	"fmt"
	"sort"

	"itdos/internal/cdr"
)

// Encode serialises a share canonically (subset ids sorted).
func (s *Share) Encode() []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(uint32(s.Party))
	sids := make([]SubsetID, 0, len(s.Vals))
	for sid := range s.Vals {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	e.WriteULong(uint32(len(sids)))
	for _, sid := range sids {
		v := s.Vals[sid]
		e.WriteULong(uint32(sid))
		e.WriteOctets(v[:])
	}
	return e.Bytes()
}

// DecodeShare parses an encoded share.
func DecodeShare(buf []byte) (*Share, error) {
	d := cdr.NewDecoder(buf, cdr.BigEndian)
	party, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("dprf: decode share: %w", err)
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("dprf: decode share: %w", err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("dprf: implausible share size %d", n)
	}
	s := &Share{Party: int(party), Vals: make(map[SubsetID]Value, n)}
	for i := 0; i < int(n); i++ {
		sid, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		raw, err := d.ReadOctets()
		if err != nil {
			return nil, err
		}
		if len(raw) != ValueSize {
			return nil, fmt.Errorf("dprf: share value size %d", len(raw))
		}
		var v Value
		copy(v[:], raw)
		s.Vals[SubsetID(sid)] = v
	}
	return s, nil
}
