// Package dprf implements the distributed (non-interactive) pseudo-random
// function ITDOS uses for intrusion-tolerant communication-key generation
// (paper §3.5, after Naor–Pinkas–Reingold [26]).
//
// Construction (the NPR "replicated subset" scheme): fix a group of n
// parties tolerating f corruptions. Enumerate every f-element subset S of
// the parties; each subset owns an independent sub-key k_S, and party i
// holds k_S for every S *not containing i*. The PRF value on input x is
//
//	F(x) = XOR over all S of HMAC-SHA256(k_S, x)
//
// Any f corrupt parties miss at least one sub-key (the subset equal to the
// corrupt set itself), so even combining everything they hold they learn
// nothing about F(x). Any f+1 parties jointly hold every sub-key, so f+1
// honest shares always reconstruct.
//
// Share verification exploits replication: each sub-key value is reported
// by every holder of that sub-key. With shares from at least 2f+1 parties,
// each subset value has at least f+1 reporters, so the value supported by
// f+1 matching reports is correct and any conflicting reporter is provably
// corrupt — which is how "the client and server replication domain
// elements can verify which Group Manager replication domain elements
// acted correctly" (paper §3.5).
package dprf

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sort"

	"itdos/internal/quorum"
)

// ValueSize is the PRF output size in bytes.
const ValueSize = sha256.Size

// Value is one PRF evaluation — in ITDOS, a communication key.
type Value [ValueSize]byte

// SubsetID canonically identifies an f-subset by its index in the
// lexicographic enumeration of f-subsets of {0..n-1}.
type SubsetID uint32

// Subsets enumerates all f-element subsets of {0..n-1} in lexicographic
// order. For f=0 it returns the single empty subset.
func Subsets(n, f int) [][]int {
	var out [][]int
	cur := make([]int, f)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == f {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v < n; v++ {
			cur[k] = v
			rec(v+1, k+1)
		}
	}
	rec(0, 0)
	return out
}

// Params describes a DPRF group.
type Params struct {
	N, F int
}

// Validate checks group parameters.
func (p Params) Validate() error {
	if p.N < 1 || p.F < 0 {
		return fmt.Errorf("dprf: invalid group n=%d f=%d", p.N, p.F)
	}
	if p.N < quorum.ReadOnly(p.F) {
		return fmt.Errorf("dprf: n=%d too small to verify against f=%d corruptions (need n >= 2f+1)",
			p.N, p.F)
	}
	return nil
}

// Quorum returns the number of shares needed for verified combination:
// with shares from 2f+1 distinct parties, every sub-key has at least f+1
// reporters, so the majority value per subset is correct.
func (p Params) Quorum() int { return quorum.ReadOnly(p.F) }

// Party holds one party's sub-keys.
type Party struct {
	params  Params
	id      int
	subsets [][]int
	keys    map[SubsetID][]byte
}

// Setup deals sub-keys to all parties from a master secret (in a real
// deployment the sub-keys come from the offline configuration step the
// paper assumes; the master secret stands in for that trusted dealer).
func Setup(params Params, master []byte) ([]*Party, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	subsets := Subsets(params.N, params.F)
	parties := make([]*Party, params.N)
	for i := range parties {
		parties[i] = &Party{
			params:  params,
			id:      i,
			subsets: subsets,
			keys:    make(map[SubsetID][]byte),
		}
	}
	for sid, members := range subsets {
		subKey := deriveSubKey(master, sid, members)
		holder := make(map[int]bool, len(members))
		for _, m := range members {
			holder[m] = true
		}
		for i := range parties {
			if !holder[i] {
				parties[i].keys[SubsetID(sid)] = subKey
			}
		}
	}
	return parties, nil
}

func deriveSubKey(master []byte, sid int, members []int) []byte {
	mac := hmac.New(sha256.New, master)
	fmt.Fprintf(mac, "subset:%d:%v", sid, members)
	return mac.Sum(nil)
}

// ID returns the party index.
func (p *Party) ID() int { return p.id }

// HeldSubsets returns the SubsetIDs this party holds keys for, sorted.
func (p *Party) HeldSubsets() []SubsetID {
	out := make([]SubsetID, 0, len(p.keys))
	for sid := range p.keys {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Share is one party's contribution to a PRF evaluation: the sub-PRF value
// for every subset whose key the party holds.
type Share struct {
	Party int
	Vals  map[SubsetID]Value
}

// EvalShare computes the party's share of F(x).
func (p *Party) EvalShare(x []byte) *Share {
	s := &Share{Party: p.id, Vals: make(map[SubsetID]Value, len(p.keys))}
	for sid, key := range p.keys {
		mac := hmac.New(sha256.New, key)
		mac.Write(x)
		var v Value
		copy(v[:], mac.Sum(nil))
		s.Vals[sid] = v
	}
	return s
}

// Combine reconstructs F(x) from shares, tolerating up to params.F corrupt
// contributors. It requires shares from at least Quorum() distinct parties
// and returns, alongside the value, the list of party ids whose
// contributions conflicted with the verified majority (provably corrupt).
func Combine(params Params, shares []*Share) (Value, []int, error) {
	var zero Value
	if err := params.Validate(); err != nil {
		return zero, nil, err
	}
	seen := make(map[int]bool)
	for _, s := range shares {
		if s == nil || s.Party < 0 || s.Party >= params.N || seen[s.Party] {
			return zero, nil, fmt.Errorf("dprf: invalid or duplicate share set")
		}
		seen[s.Party] = true
	}
	if len(shares) < params.Quorum() {
		return zero, nil, fmt.Errorf("dprf: need %d shares, have %d", params.Quorum(), len(shares))
	}
	subsets := Subsets(params.N, params.F)
	corrupt := make(map[int]bool)
	var out Value
	for sid := range subsets {
		id := SubsetID(sid)
		holder := make(map[int]bool, params.F)
		for _, m := range subsets[sid] {
			holder[m] = true
		}
		// Tally reported values for this subset.
		counts := make(map[Value][]int)
		for _, s := range shares {
			if holder[s.Party] {
				continue // party is in S: it must not hold k_S
			}
			v, ok := s.Vals[id]
			if !ok {
				// A correct holder always reports; omission is a fault.
				corrupt[s.Party] = true
				continue
			}
			counts[v] = append(counts[v], s.Party)
		}
		var winner *Value
		for v, supporters := range counts {
			if len(supporters) >= quorum.Vote(params.F) {
				v := v
				winner = &v
				break
			}
		}
		if winner == nil {
			return zero, nil, fmt.Errorf("dprf: subset %d: no value with f+1 support (need more shares)", sid)
		}
		for v, supporters := range counts {
			if v != *winner {
				for _, pid := range supporters {
					corrupt[pid] = true
				}
			}
		}
		for i := range out {
			out[i] ^= winner[i]
		}
	}
	// Also flag parties that claimed sub-keys they cannot hold.
	for _, s := range shares {
		for sid := range s.Vals {
			if int(sid) >= len(subsets) {
				corrupt[s.Party] = true
				continue
			}
			for _, m := range subsets[sid] {
				if m == s.Party {
					corrupt[s.Party] = true
				}
			}
		}
	}
	ids := make([]int, 0, len(corrupt))
	for id := range corrupt {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return out, ids, nil
}

// Eval computes F(x) directly from the full sub-key set (dealer-side
// reference implementation used in tests to cross-check Combine).
func Eval(params Params, master, x []byte) (Value, error) {
	var zero Value
	if err := params.Validate(); err != nil {
		return zero, err
	}
	subsets := Subsets(params.N, params.F)
	var out Value
	for sid, members := range subsets {
		mac := hmac.New(sha256.New, deriveSubKey(master, sid, members))
		mac.Write(x)
		var v Value
		copy(v[:], mac.Sum(nil))
		for i := range out {
			out[i] ^= v[i]
		}
	}
	return out, nil
}
