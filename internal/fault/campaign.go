package fault

import (
	"itdos/internal/cdr"
	"itdos/internal/orb"
)

// This file holds the scripted-campaign injectors: adversaries that act
// over time rather than from the first call — the raw material of the
// C9–C11 campaign experiments. They are deterministic (counter-based, no
// randomness) so seeded campaign transcripts replay exactly.

// Switch is a runtime compromise handle: it wraps a clean servant and
// lets a campaign script compromise and later restore the replica at
// chosen points in virtual time. Restore models a restart from the clean
// code image — the adversary's in-memory foothold does not survive a
// proactive recovery, which is exactly what the recovery rotation buys.
type Switch struct {
	evil orb.Servant
}

// NewSwitch returns an armed-off compromise handle.
func NewSwitch() *Switch { return &Switch{} }

// Compromise makes every wrapped servant delegate to evil from now on.
func (s *Switch) Compromise(evil orb.Servant) { s.evil = evil }

// Restore returns every wrapped servant to its clean behaviour.
func (s *Switch) Restore() { s.evil = nil }

// Compromised reports whether the handle currently injects faults.
func (s *Switch) Compromised() bool { return s.evil != nil }

// Wrap returns a servant that follows the switch: clean while restored,
// the injected adversary while compromised.
func (s *Switch) Wrap(clean orb.Servant) orb.Servant {
	return orb.ServantFunc(func(ctx *orb.CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
		if s.evil != nil {
			return s.evil.Invoke(ctx, op, args)
		}
		return clean.Invoke(ctx, op, args)
	})
}

// IntermittentLyingServant answers correctly except on every period-th
// invocation (the period-th, 2·period-th, …), where it returns the given
// results instead — the "slow compromise" adversary that tries to stay
// under any detection threshold by spacing its lies out.
func IntermittentLyingServant(inner orb.Servant, period int, results ...cdr.Value) orb.Servant {
	if period < 1 {
		period = 1
	}
	calls := 0
	return orb.ServantFunc(func(ctx *orb.CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
		calls++
		if calls%period == 0 {
			return results, nil
		}
		return inner.Invoke(ctx, op, args)
	})
}
