package fault

import (
	"testing"

	"itdos/internal/cdr"
	"itdos/internal/netsim"
	"itdos/internal/orb"
)

func TestLyingServant(t *testing.T) {
	s := LyingServant(cdr.Value(666.0))
	res, err := s.Invoke(nil, "anything", nil)
	if err != nil || len(res) != 1 || res[0].(float64) != 666.0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestNegatingServant(t *testing.T) {
	inner := orb.ServantFunc(func(_ *orb.CallContext, _ string, _ []cdr.Value) ([]cdr.Value, error) {
		return []cdr.Value{42.0, int32(7), "s"}, nil
	})
	res, err := NegatingServant(inner).Invoke(nil, "op", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != -42.0 || res[1].(int32) != -7 || res[2].(string) != "s" {
		t.Fatalf("res = %v", res)
	}
}

func TestExceptionServant(t *testing.T) {
	_, err := ExceptionServant("IDL:Boom:1.0").Invoke(nil, "op", nil)
	ue, ok := err.(*orb.UserException)
	if !ok || ue.Name != "IDL:Boom:1.0" {
		t.Fatalf("err = %v", err)
	}
}

func TestMuteFilters(t *testing.T) {
	net := netsim.NewNetwork(1, nil)
	got := map[string]int{}
	for _, id := range []netsim.NodeID{"a", "b", "c"} {
		id := id
		net.AddNode(id, netsim.HandlerFunc(func(netsim.NodeID, []byte) {
			got[string(id)]++
		}))
	}
	net.AddFilter(Mute("a"))
	net.AddFilter(MuteTowards("b", "c"))
	net.Send("a", "b", []byte{1}) // dropped (a muted)
	net.Send("b", "c", []byte{1}) // dropped (b→c muted)
	net.Send("b", "a", []byte{1}) // passes
	net.Send("c", "b", []byte{1}) // passes
	net.Run(100)
	if got["a"] != 1 || got["b"] != 1 || got["c"] != 0 {
		t.Fatalf("got = %v", got)
	}
}

func TestCorruptMutatesSomeMessages(t *testing.T) {
	net := netsim.NewNetwork(1, nil)
	changed, total := 0, 0
	net.AddNode("rx", netsim.HandlerFunc(func(_ netsim.NodeID, p []byte) {
		total++
		if p[0] != 0xAA || p[1] != 0xAA {
			changed++
		}
	}))
	net.AddNode("tx", netsim.HandlerFunc(func(netsim.NodeID, []byte) {}))
	net.AddFilter(Corrupt("tx", 0.5, 7))
	for i := 0; i < 200; i++ {
		net.Send("tx", "rx", []byte{0xAA, 0xAA})
	}
	net.Run(1000)
	if total != 200 {
		t.Fatalf("delivered %d", total)
	}
	if changed < 50 || changed > 150 {
		t.Fatalf("corrupted %d of 200 at p=0.5", changed)
	}
}

func TestLossyDropsSomeMessages(t *testing.T) {
	net := netsim.NewNetwork(1, nil)
	total := 0
	net.AddNode("rx", netsim.HandlerFunc(func(netsim.NodeID, []byte) { total++ }))
	net.AddNode("tx", netsim.HandlerFunc(func(netsim.NodeID, []byte) {}))
	net.AddFilter(Lossy("tx", 0.5, 9))
	for i := 0; i < 200; i++ {
		net.Send("tx", "rx", []byte{1})
	}
	net.Run(1000)
	if total < 50 || total > 150 {
		t.Fatalf("delivered %d of 200 at p=0.5", total)
	}
}

func TestReplayRecorder(t *testing.T) {
	net := netsim.NewNetwork(1, nil)
	net.AddNode("rx", netsim.HandlerFunc(func(netsim.NodeID, []byte) {}))
	net.AddNode("tx", netsim.HandlerFunc(func(netsim.NodeID, []byte) {}))
	r := NewReplay("tx", 2)
	net.AddFilter(r.Filter())
	for i := 0; i < 6; i++ {
		net.Send("tx", "rx", []byte{byte(i)})
	}
	net.Run(100)
	rec := r.Recorded()
	if len(rec) != 3 {
		t.Fatalf("recorded %d frames, want 3", len(rec))
	}
	if rec[0][0] != 1 || rec[1][0] != 3 || rec[2][0] != 5 {
		t.Fatalf("recorded = %v", rec)
	}
}
