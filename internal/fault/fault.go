// Package fault provides reusable Byzantine fault injectors for tests,
// examples and benchmarks: compromised servants (value faults), network
// interceptors (drop, corrupt, delay-by-drop), and scenario helpers that
// model the adversary of the paper's threat model (§2.1) — an attacker who
// has fully compromised up to f replication domain elements.
package fault

import (
	"math/rand"

	"itdos/internal/cdr"
	"itdos/internal/netsim"
	"itdos/internal/orb"
)

// LyingServant returns a servant that answers every operation with the
// given results — a value-fault compromise: syntactically valid,
// semantically wrong, exactly what voting must mask.
func LyingServant(results ...cdr.Value) orb.Servant {
	return orb.ServantFunc(func(ctx *orb.CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
		return results, nil
	})
}

// NegatingServant wraps a correct servant and negates numeric results — a
// subtler value fault that still unmarshals cleanly.
func NegatingServant(inner orb.Servant) orb.Servant {
	return orb.ServantFunc(func(ctx *orb.CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
		results, err := inner.Invoke(ctx, op, args)
		if err != nil {
			return nil, err
		}
		out := make([]cdr.Value, len(results))
		for i, r := range results {
			switch v := r.(type) {
			case float64:
				out[i] = -v
			case float32:
				out[i] = -v
			case int32:
				out[i] = -v
			case int64:
				out[i] = -v
			default:
				out[i] = r
			}
		}
		return out, nil
	})
}

// ExceptionServant returns a servant that raises a user exception on every
// call — a fail-loud compromise.
func ExceptionServant(name string) orb.Servant {
	return orb.ServantFunc(func(ctx *orb.CallContext, op string, args []cdr.Value) ([]cdr.Value, error) {
		return nil, &orb.UserException{Name: name}
	})
}

// Mute drops every message originating from addr: a crashed or silenced
// element. The voter must decide without it (it never waits for all 3f+1,
// paper §3.6).
func Mute(addr netsim.NodeID) netsim.Filter {
	return func(from, to netsim.NodeID, payload []byte) ([]byte, bool) {
		return nil, from == addr
	}
}

// MuteTowards drops messages from addr to a specific destination only —
// a partial, targeted silence (e.g. a replica that stonewalls one client).
func MuteTowards(addr, dst netsim.NodeID) netsim.Filter {
	return func(from, to netsim.NodeID, payload []byte) ([]byte, bool) {
		return nil, from == addr && to == dst
	}
}

// Corrupt flips bits in messages from addr with the given probability.
// Authenticated layers must reject the damage (signatures, MACs), making
// corruption equivalent to loss for correct receivers.
func Corrupt(addr netsim.NodeID, prob float64, seed int64) netsim.Filter {
	rng := rand.New(rand.NewSource(seed))
	return func(from, to netsim.NodeID, payload []byte) ([]byte, bool) {
		if from != addr || len(payload) == 0 || rng.Float64() >= prob {
			return nil, false
		}
		mutated := append([]byte(nil), payload...)
		mutated[rng.Intn(len(mutated))] ^= 1 << uint(rng.Intn(8))
		return mutated, false
	}
}

// Lossy drops messages from addr with the given probability — a flaky
// (not malicious) element or link.
func Lossy(addr netsim.NodeID, prob float64, seed int64) netsim.Filter {
	rng := rand.New(rand.NewSource(seed))
	return func(from, to netsim.NodeID, payload []byte) ([]byte, bool) {
		return nil, from == addr && rng.Float64() < prob
	}
}

// Replay duplicates every k-th message from addr — replayed traffic that
// replay windows must reject. The duplicate is delivered by mutating
// nothing (netsim filters cannot reinject), so Replay is implemented as a
// recorder: use Recorded() to fetch captured frames and re-send them from
// a test.
type Replay struct {
	addr     netsim.NodeID
	every    int
	count    int
	recorded [][]byte
}

// NewReplay captures every every-th message sent by addr.
func NewReplay(addr netsim.NodeID, every int) *Replay {
	if every < 1 {
		every = 1
	}
	return &Replay{addr: addr, every: every}
}

// Filter returns the netsim filter that records frames.
func (r *Replay) Filter() netsim.Filter {
	return func(from, to netsim.NodeID, payload []byte) ([]byte, bool) {
		if from == r.addr {
			r.count++
			if r.count%r.every == 0 {
				r.recorded = append(r.recorded, append([]byte(nil), payload...))
			}
		}
		return nil, false
	}
}

// Recorded returns the captured frames.
func (r *Replay) Recorded() [][]byte { return r.recorded }
