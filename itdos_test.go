package itdos_test

import (
	"testing"
	"time"

	"itdos"
)

const echoIface = "IDL:demo/Echo:1.0"

func TestPublicAPIQuickstart(t *testing.T) {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(echoIface).
		Op("echo",
			[]itdos.Param{{Name: "in", Type: itdos.String}},
			[]itdos.Param{{Name: "out", Type: itdos.String}}).
		Op("sum",
			[]itdos.Param{{Name: "xs", Type: itdos.SequenceOf(itdos.Double)}},
			[]itdos.Param{{Name: "total", Type: itdos.Double}}))

	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     42,
		Latency:  itdos.UniformLatency(time.Millisecond, 2*time.Millisecond),
		Registry: reg,
		Domains: []itdos.DomainSpec{{
			Name: "echo", N: 4, F: 1,
			Profiles: []itdos.Profile{
				itdos.SolarisLike, itdos.LinuxLike, itdos.SolarisLike, itdos.LinuxLike,
			},
			Setup: func(member int, a *itdos.Adapter) error {
				return a.Register("echo-1", echoIface, itdos.ServantFunc(
					func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
						switch op {
						case "echo":
							return []itdos.Value{args[0]}, nil
						case "sum":
							total := 0.0
							for _, x := range args[0].([]itdos.Value) {
								total += x.(float64)
							}
							return []itdos.Value{total}, nil
						}
						return nil, &itdos.UserException{Name: "IDL:demo/NoSuchOp:1.0"}
					}))
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "alice"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ref := itdos.ObjectRef{Domain: "echo", ObjectKey: "echo-1", Interface: echoIface}
	alice := sys.Client("alice")

	out, err := alice.CallAndRun(ref, "echo", []itdos.Value{"hello itdos"}, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(string) != "hello itdos" {
		t.Fatalf("echo = %q", out[0])
	}

	out, err = alice.CallAndRun(ref, "sum",
		[]itdos.Value{[]itdos.Value{1.5, 2.5, 3.0}}, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(float64) != 7.0 {
		t.Fatalf("sum = %v", out[0])
	}
}
