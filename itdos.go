// Package itdos is a Go reproduction of the Intrusion Tolerant Distributed
// Object Systems (ITDOS) architecture — "Developing a Heterogeneous
// Intrusion Tolerant CORBA System" (Sames, Matt, Niebuhr, Tally, Whitmore,
// Bakken; DSN 2002).
//
// ITDOS is intrusion-tolerant CORBA middleware: a service is actively
// replicated over 3f+1 heterogeneous server processes whose requests and
// replies are totally ordered by a Castro–Liskov (PBFT) multicast, voted
// on as unmarshalled values so byte-level platform differences don't
// matter, and protected by symmetric communication keys generated with
// threshold cryptography inside a replicated Group Manager. Up to f
// arbitrarily faulty (Byzantine) replicas are masked, detected and
// expelled.
//
// # Quick start
//
// Define interfaces, describe the deployment, and invoke:
//
//	reg := itdos.NewRegistry()
//	reg.Register(itdos.NewInterface("IDL:demo/Echo:1.0").
//		Op("echo",
//			[]itdos.Param{{Name: "in", Type: itdos.String}},
//			[]itdos.Param{{Name: "out", Type: itdos.String}}))
//
//	sys, err := itdos.NewSystem(itdos.Config{
//		Registry: reg,
//		Domains: []itdos.DomainSpec{{
//			Name: "echo", N: 4, F: 1,
//			Setup: func(member int, a *itdos.Adapter) error {
//				return a.Register("echo-1", "IDL:demo/Echo:1.0", itdos.ServantFunc(
//					func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
//						return []itdos.Value{args[0]}, nil
//					}))
//			},
//		}},
//		Clients: []itdos.ClientSpec{{Name: "alice"}},
//	})
//	// ...
//	ref := itdos.ObjectRef{Domain: "echo", ObjectKey: "echo-1", Interface: "IDL:demo/Echo:1.0"}
//	out, err := sys.Client("alice").CallAndRun(ref, "echo", []itdos.Value{"hi"}, 5_000_000)
//
// The deployment runs on a deterministic simulated network: drive it with
// System.RunUntil (or the CallAndRun convenience) and inject faults,
// partitions and latency through the exposed netsim handle.
package itdos

import (
	"time"

	"itdos/internal/cdr"
	"itdos/internal/idl"
	"itdos/internal/itc"
	"itdos/internal/netsim"
	"itdos/internal/obs"
	"itdos/internal/obs/flight"
	"itdos/internal/orb"
	"itdos/internal/replica"
	"itdos/internal/vote"
)

// --- deployment ---

// Config describes a full ITDOS deployment (domains, clients, the Group
// Manager, crypto configuration and voting policy).
type Config = replica.SystemConfig

// System is a running deployment on the simulated network.
type System = replica.System

// DomainSpec describes one replicated server domain (N ≥ 3F+1).
type DomainSpec = replica.DomainSpec

// ClientSpec describes a singleton client process.
type ClientSpec = replica.ClientSpec

// GroupSpec sizes the Group Manager domain.
type GroupSpec = replica.GroupSpec

// ITCConfig tunes the intrusion-tolerance controller; set Config.ITC to a
// non-nil value to enable it (see internal/itc for the feedback loop:
// suspicion decay, feedback-scheduled rekey, evidence-gated expulsion and
// proactive recovery rotation).
type ITCConfig = itc.Config

// Client is a singleton client runtime.
type Client = replica.Client

// Element is one replication domain element.
type Element = replica.Element

// Profile models an element's platform (byte order, float behaviour,
// OS/language labels) — the heterogeneity dimension of the paper.
type Profile = replica.Profile

// Platform profiles modelled after the paper's targets.
var (
	DefaultProfile = replica.DefaultProfile
	SolarisLike    = replica.SolarisLike
	LinuxLike      = replica.LinuxLike
)

// NewSystem builds and wires a deployment.
func NewSystem(cfg Config) (*System, error) { return replica.NewSystem(cfg) }

// --- object model ---

// ObjectRef names a CORBA object inside a replication domain.
type ObjectRef = orb.ObjectRef

// Servant is an application object implementation.
type Servant = orb.Servant

// ServantFunc adapts a function to Servant.
type ServantFunc = orb.ServantFunc

// CallContext carries per-invocation information (including the Caller for
// nested invocations).
type CallContext = orb.CallContext

// Adapter is the object adapter servants register with.
type Adapter = orb.Adapter

// UserException is a declared application-level exception.
type UserException = orb.UserException

// --- interface definitions ---

// Registry is the runtime interface repository (the marshalling engine).
type Registry = idl.Registry

// Interface is a named collection of operations.
type Interface = idl.Interface

// Param is a named, typed operation parameter or result.
type Param = idl.Param

// NewRegistry returns an empty interface registry.
func NewRegistry() *Registry { return idl.NewRegistry() }

// NewInterface creates an interface definition.
func NewInterface(name string) *Interface { return idl.NewInterface(name) }

// --- values and types ---

// Value is an unmarshalled CORBA value (see cdr.Value for the mapping).
type Value = cdr.Value

// TypeCode describes a CORBA type at runtime.
type TypeCode = cdr.TypeCode

// Member is one field of a struct TypeCode.
type Member = cdr.Member

// Primitive TypeCodes.
var (
	Boolean   = cdr.Boolean
	Octet     = cdr.Octet
	Short     = cdr.Short
	UShort    = cdr.UShort
	Long      = cdr.Long
	ULong     = cdr.ULong
	LongLong  = cdr.LongLong
	ULongLong = cdr.ULongLong
	Float     = cdr.Float
	Double    = cdr.Double
	String    = cdr.String
)

// SequenceOf returns an unbounded sequence TypeCode.
func SequenceOf(elem *TypeCode) *TypeCode { return cdr.SequenceOf(elem) }

// ArrayOf returns a fixed-length array TypeCode.
func ArrayOf(elem *TypeCode, length int) *TypeCode { return cdr.ArrayOf(elem, length) }

// StructOf returns a struct TypeCode.
func StructOf(name string, members ...Member) *TypeCode { return cdr.StructOf(name, members...) }

// EnumOf returns an enum TypeCode.
func EnumOf(name string, labels ...string) *TypeCode { return cdr.EnumOf(name, labels...) }

// Byte orders for Profile definitions.
const (
	BigEndian    = cdr.BigEndian
	LittleEndian = cdr.LittleEndian
)

// --- voting policy ---

// VoteMode selects the voter decision policy.
type VoteMode = vote.Mode

// Voting policies (the paper's choice is EagerFPlus1).
const (
	EagerFPlus1 = vote.EagerFPlus1
	AfterQuorum = vote.AfterQuorum
	WaitAll     = vote.WaitAll
)

// --- observability ---

// Metrics is the virtual-time metrics registry (counters, gauges,
// fixed-bucket histograms). Pass one in Config.Metrics to observe a
// deployment; read it back with WriteText/WriteJSON.
type Metrics = obs.Registry

// Tracer records per-invocation spans over the simulator's virtual clock.
// Obtain one with System.EnableTracing.
type Tracer = obs.Tracer

// Span is one traced operation in an invocation's span tree.
type Span = obs.Span

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// FlightRecorder is the per-replica ring buffer of protocol events.
// Pass one in Config.Flight to capture forensic timelines; the nil
// default records nothing and changes no behaviour.
type FlightRecorder = flight.Recorder

// FlightDump is one schema-pinned snapshot of a flight recorder.
type FlightDump = flight.Dump

// NewFlightRecorder returns a flight recorder for Config.Flight.
// capacity <= 0 selects the default per-replica ring size; NewSystem
// binds the simulator's virtual clock when it builds the network.
func NewFlightRecorder(capacity int) *FlightRecorder { return flight.New(capacity) }

// --- simulation helpers ---

// LatencyModel shapes simulated one-way delays.
type LatencyModel = netsim.LatencyModel

// ConstantLatency returns a fixed-delay model.
func ConstantLatency(d time.Duration) LatencyModel { return netsim.ConstantLatency(d) }

// UniformLatency returns a uniformly distributed delay model.
func UniformLatency(lo, hi time.Duration) LatencyModel { return netsim.UniformLatency(lo, hi) }
