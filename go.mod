module itdos

go 1.22
