// Command heterogeneous demonstrates the paper's core technical claim
// (§3.6): byte-by-byte voting does not work correctly in the presence of
// heterogeneity or inexact values, while ITDOS's unmarshalled (and, for
// floating point, inexact) voting does.
//
// Three escalating scenarios run over a domain of four replicas split
// across big- and little-endian platforms (f = 1):
//
//  1. Healthy run — byte voting *appears* to work, but only because two
//     replicas happen to share a platform: its effective redundancy is the
//     size of the largest same-encoding clique, not n.
//  2. One slow replica + one compromised replica (both within the f=1
//     budget when counted as a single fault each for different voters) —
//     byte voting can no longer find f+1 identical byte streams and
//     stalls; value voting still decides from one big-endian and one
//     little-endian correct reply.
//  3. Platform-divergent floating point — byte and exact-value voting both
//     stall; inexact voting (Parhami [31], paper §3.6) decides.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"itdos"
	"itdos/internal/fault"
	"itdos/internal/netsim"
)

const mathIface = "IDL:examples/Math:1.0"

func buildSystem(seed int64, byteVoting bool, epsilon, jitter float64) (*itdos.System, error) {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(mathIface).
		Op("norm2",
			[]itdos.Param{{Name: "x", Type: itdos.Double}, {Name: "y", Type: itdos.Double}},
			[]itdos.Param{{Name: "n", Type: itdos.Double}}).
		Op("concat",
			[]itdos.Param{{Name: "a", Type: itdos.String}, {Name: "b", Type: itdos.String}},
			[]itdos.Param{{Name: "ab", Type: itdos.String}}))
	platforms := []itdos.Profile{
		{Order: itdos.BigEndian, FloatJitter: jitter, OS: "solaris", Lang: "cpp"},
		{Order: itdos.LittleEndian, FloatJitter: jitter, OS: "linux", Lang: "java"},
		{Order: itdos.BigEndian, FloatJitter: jitter, OS: "aix", Lang: "ada"},
		{Order: itdos.LittleEndian, FloatJitter: jitter, OS: "hpux", Lang: "cpp"},
	}
	return itdos.NewSystem(itdos.Config{
		Seed:       seed,
		Latency:    itdos.UniformLatency(time.Millisecond, 2*time.Millisecond),
		Registry:   reg,
		ByteVoting: byteVoting,
		Epsilon:    epsilon,
		Domains: []itdos.DomainSpec{{
			Name: "math", N: 4, F: 1,
			Profiles: platforms,
			Setup: func(member int, a *itdos.Adapter) error {
				return a.Register("math-1", mathIface, itdos.ServantFunc(
					func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
						switch op {
						case "norm2":
							x, y := args[0].(float64), args[1].(float64)
							return []itdos.Value{x*x + y*y}, nil
						case "concat":
							return []itdos.Value{args[0].(string) + args[1].(string)}, nil
						}
						return nil, &itdos.UserException{Name: "bad-op"}
					}))
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "alice"}},
	})
}

type outcome string

func attempt(sys *itdos.System, op string, args []itdos.Value) outcome {
	ref := itdos.ObjectRef{Domain: "math", ObjectKey: "math-1", Interface: mathIface}
	if _, err := sys.Client("alice").CallAndRun(ref, op, args, 800_000); err != nil {
		return "STALLED"
	}
	return "ok"
}

// sabotage silences one little-endian replica towards the client and
// compromises one big-endian replica — after which no two correct replies
// share a byte encoding.
func sabotage(sys *itdos.System) error {
	sys.Net.AddFilter(fault.MuteTowards(
		netsim.NodeID("math/r3"), netsim.NodeID("alice/inbox")))
	return sys.Domain("math").Elements[0].Adapter.Register(
		"math-1", mathIface, fault.LyingServant(itdos.Value("hacked")))
}

func main() {
	fmt.Println("heterogeneous voting (4 replicas: solaris/cpp+BE, linux/java+LE, aix/ada+BE, hpux/cpp+LE; f=1)")
	fmt.Println()
	fmt.Printf("%-34s %-14s %-14s %s\n", "scenario", "byte-by-byte", "value-exact", "value-inexact")

	type cfg struct {
		name       string
		byteVoting bool
		epsilon    float64
	}
	voters := []cfg{
		{"byte", true, 0},
		{"exact", false, 0},
		{"inexact", false, 1e-9},
	}

	row := func(name string, jitter float64, doSabotage bool, op string, args []itdos.Value) {
		results := make([]outcome, len(voters))
		for i, v := range voters {
			sys, err := buildSystem(31, v.byteVoting, v.epsilon, jitter)
			if err != nil {
				log.Fatal(err)
			}
			if doSabotage {
				if err := sabotage(sys); err != nil {
					log.Fatal(err)
				}
			}
			results[i] = attempt(sys, op, args)
			_ = sys.Close()
		}
		fmt.Printf("%-34s %-14s %-14s %s\n", name, results[0], results[1], results[2])
	}

	strArgs := []itdos.Value{"inter", "op"}
	fltArgs := []itdos.Value{3.0, 4.0}
	row("1. healthy, strings", 0, false, "concat", strArgs)
	row("2. 1 slow + 1 compromised, strings", 0, true, "concat", strArgs)
	row("3. healthy, divergent floats", 1e-12, false, "norm2", fltArgs)

	fmt.Println()
	fmt.Println("row 1: byte voting only succeeds because two replicas share a platform —")
	fmt.Println("       heterogeneity already cut its redundancy from 4 copies to 2.")
	fmt.Println("row 2: with one slow and one lying replica no two correct replies are")
	fmt.Println("       byte-identical; byte voting stalls, value voting still decides.")
	fmt.Println("row 3: platform floating-point divergence defeats both byte and exact")
	fmt.Println("       voting; only inexact voting (paper §3.6) reaches f+1 agreement.")
}
