// Command firewall demonstrates the IT-CORBA firewall proxy of the paper's
// Figure 1: an enclave-boundary filter that monitors BFTM traffic entering
// a replication domain. Legitimate client traffic passes; malformed
// frames, oversized frames and floods are dropped at the boundary before
// they reach the replicas.
//
// Run with:
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"
	"time"

	"itdos"
	"itdos/internal/firewall"
	"itdos/internal/netsim"
	"itdos/internal/smiop"
)

const kvIface = "IDL:examples/KV:1.0"

func main() {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(kvIface).
		Op("put",
			[]itdos.Param{{Name: "k", Type: itdos.String}, {Name: "v", Type: itdos.String}},
			[]itdos.Param{{Name: "old", Type: itdos.String}}))

	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     1,
		Latency:  itdos.UniformLatency(time.Millisecond, 2*time.Millisecond),
		Registry: reg,
		Domains: []itdos.DomainSpec{{
			Name: "kv", N: 4, F: 1,
			Setup: func(member int, a *itdos.Adapter) error {
				store := map[string]string{}
				return a.Register("kv", kvIface, itdos.ServantFunc(
					func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
						k, v := args[0].(string), args[1].(string)
						old := store[k]
						store[k] = v
						return []itdos.Value{old}, nil
					}))
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "alice"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Stand a firewall proxy at the kv enclave boundary: only DATA and
	// control envelopes that parse are admitted, and any single source is
	// limited to 64 frames per window.
	protected := sys.Domain("kv").Dom.Addrs()
	proxy := firewall.New(firewall.Policy{
		RatePerSource: 64,
		RateWindow:    1 << 20,
		AllowKinds: map[smiop.Kind]bool{
			smiop.KindData:          true,
			smiop.KindKeyShare:      true,
			smiop.KindOpenRequest:   true,
			smiop.KindChangeRequest: true,
		},
	}, protected)
	sys.Net.AddFilter(proxy.Filter())

	fmt.Println("firewall proxy at the `kv` enclave boundary (Figure 1)")
	fmt.Println("-------------------------------------------------------")

	ref := itdos.ObjectRef{Domain: "kv", ObjectKey: "kv", Interface: kvIface}
	alice := sys.Client("alice")
	if _, err := alice.CallAndRun(ref, "put",
		[]itdos.Value{"motd", "hello"}, 10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. legitimate put() passed the proxy           %+v\n", proxy.Stats())

	// An attacker outside the enclave floods the replicas with garbage and
	// with syntactically valid but oversized frames.
	sys.Net.AddNode("attacker", netsim.HandlerFunc(func(netsim.NodeID, []byte) {}))
	for i := 0; i < 500; i++ {
		sys.Net.Send("attacker", protected[i%len(protected)], []byte("junk-junk-junk"))
	}
	sys.Net.Send("attacker", protected[0], make([]byte, 4<<20))
	sys.Net.Run(10_000_000)
	fmt.Printf("2. 500 garbage frames + 1 oversized dropped    %+v\n", proxy.Stats())

	// Service is unaffected.
	res, err := alice.CallAndRun(ref, "put",
		[]itdos.Value{"motd", "still here"}, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. put() after the flood -> old=%q        %+v\n", res[0], proxy.Stats())
	fmt.Println("-------------------------------------------------------")
	fmt.Println("the proxy admits only parseable BFTM traffic within the rate budget;")
	fmt.Println("intra-enclave replica traffic bypasses it entirely.")
}
