// Command nested demonstrates replication-domain-to-replication-domain
// invocations — the paper's nested invocation support (§3.1) and
// replicated-client capability (§2): a travel-booking front service,
// itself a 4-way replicated domain, invokes two further replicated
// domains (flights, hotels) while serving a client request. The front
// domain acts as a replicated client: its elements each multicast a copy
// of the nested request, the back domains vote the copies, and the front
// elements vote the reply copies — all while the Castro–Liskov delivery
// thread keeps running under the blocked ORB thread (the paper's
// two-thread model).
//
// Run with:
//
//	go run ./examples/nested
package main

import (
	"fmt"
	"log"
	"time"

	"itdos"
)

const (
	travelIface = "IDL:examples/Travel:1.0"
	quoteIface  = "IDL:examples/Quote:1.0"
)

var (
	travelRef = itdos.ObjectRef{Domain: "travel", ObjectKey: "desk", Interface: travelIface}
	flightRef = itdos.ObjectRef{Domain: "flights", ObjectKey: "quotes", Interface: quoteIface}
	hotelRef  = itdos.ObjectRef{Domain: "hotels", ObjectKey: "quotes", Interface: quoteIface}
)

// quoteServant prices itineraries deterministically.
func quoteServant(base int32) itdos.Servant {
	return itdos.ServantFunc(func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
		city := args[0].(string)
		price := base
		for _, r := range city {
			price += int32(r) % 97
		}
		return []itdos.Value{price}, nil
	})
}

// travelServant performs two nested invocations per booking.
type travelServant struct{}

func (travelServant) Invoke(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
	city := args[0].(string)
	flight, err := ctx.Caller.Call(flightRef, "quote", []itdos.Value{city})
	if err != nil {
		return nil, fmt.Errorf("flights: %w", err)
	}
	hotel, err := ctx.Caller.Call(hotelRef, "quote", []itdos.Value{city})
	if err != nil {
		return nil, fmt.Errorf("hotels: %w", err)
	}
	return []itdos.Value{flight[0].(int32) + hotel[0].(int32)}, nil
}

func main() {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(travelIface).
		Op("book",
			[]itdos.Param{{Name: "city", Type: itdos.String}},
			[]itdos.Param{{Name: "total", Type: itdos.Long}}))
	reg.Register(itdos.NewInterface(quoteIface).
		Op("quote",
			[]itdos.Param{{Name: "city", Type: itdos.String}},
			[]itdos.Param{{Name: "price", Type: itdos.Long}}))

	mixed := []itdos.Profile{itdos.SolarisLike, itdos.LinuxLike, itdos.SolarisLike, itdos.LinuxLike}
	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     404,
		Latency:  itdos.UniformLatency(time.Millisecond, 3*time.Millisecond),
		Registry: reg,
		GM:       itdos.GroupSpec{N: 4, F: 1},
		Domains: []itdos.DomainSpec{
			{
				Name: "travel", N: 4, F: 1, Profiles: mixed,
				Setup: func(member int, a *itdos.Adapter) error {
					return a.Register("desk", travelIface, travelServant{})
				},
			},
			{
				Name: "flights", N: 4, F: 1, Profiles: mixed,
				Setup: func(member int, a *itdos.Adapter) error {
					return a.Register("quotes", quoteIface, quoteServant(200))
				},
			},
			{
				Name: "hotels", N: 4, F: 1, Profiles: mixed,
				Setup: func(member int, a *itdos.Adapter) error {
					return a.Register("quotes", quoteIface, quoteServant(80))
				},
			},
		},
		Clients: []itdos.ClientSpec{{Name: "traveller"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("nested invocations: traveller -> travel(×4) -> flights(×4) + hotels(×4)")
	fmt.Println("------------------------------------------------------------------------")
	cli := sys.Client("traveller")
	for _, city := range []string{"Goteborg", "Washington", "Pullman"} {
		before := sys.Net.Stats().MessagesSent
		res, err := cli.CallAndRun(travelRef, "book", []itdos.Value{city}, 30_000_000)
		if err != nil {
			log.Fatal(err)
		}
		msgs := sys.Net.Stats().MessagesSent - before
		fmt.Printf("book(%-11s) -> total %4d   (%4d msgs: 1 client call fanned out over 3 BFT domains)\n",
			city, res[0], msgs)
	}
	fmt.Println("------------------------------------------------------------------------")
	fmt.Println("each booking totally ordered the request in `travel`, whose 4 elements")
	fmt.Println("then acted as a replicated client of `flights` and `hotels`; every")
	fmt.Println("domain voted the other domains' message copies on unmarshalled values.")
}
