// Command intrusion walks through the full intrusion-tolerance story of
// the paper: a replica is compromised and starts returning attacker-chosen
// values; the voter masks the bad value; the client detects the conflict,
// files a change_request carrying the signed messages as proof; the
// replicated Group Manager validates the proof with its marshalling
// engine, expels the traitor, and rekeys the communication group so the
// expelled element is cryptographically locked out (paper §3.5–3.6).
//
// Run with:
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"time"

	"itdos"
)

const sensorIface = "IDL:examples/Sensor:1.0"

func main() {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(sensorIface).
		Op("read",
			[]itdos.Param{{Name: "channel", Type: itdos.Long}},
			[]itdos.Param{{Name: "value", Type: itdos.Double}}))

	// A deterministic "sensor" service.
	makeServant := func() itdos.Servant {
		return itdos.ServantFunc(func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
			ch := args[0].(int32)
			return []itdos.Value{float64(ch) * 1.5}, nil
		})
	}
	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     7,
		Latency:  itdos.UniformLatency(time.Millisecond, 3*time.Millisecond),
		Registry: reg,
		GM:       itdos.GroupSpec{N: 4, F: 1},
		Domains: []itdos.DomainSpec{{
			Name: "sensors", N: 4, F: 1,
			Profiles: []itdos.Profile{
				itdos.SolarisLike, itdos.LinuxLike, itdos.SolarisLike, itdos.LinuxLike,
			},
			Setup: func(member int, a *itdos.Adapter) error {
				return a.Register("array-1", sensorIface, makeServant())
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "operator"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	ref := itdos.ObjectRef{Domain: "sensors", ObjectKey: "array-1", Interface: sensorIface}
	op := sys.Client("operator")

	fmt.Println("ITDOS intrusion tolerance walkthrough (f=1, n=4)")
	fmt.Println("=================================================")

	res, err := op.CallAndRun(ref, "read", []itdos.Value{int32(4)}, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. healthy read(4) = %v — all four replicas agree\n", res[0])

	// The adversary compromises replica 2: it now reports attacker-chosen
	// readings (an arbitrary/Byzantine value fault).
	evil := itdos.ServantFunc(func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
		return []itdos.Value{9999.0}, nil
	})
	if err := sys.Domain("sensors").Elements[2].Adapter.Register("array-1", sensorIface, evil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. ADVERSARY compromises sensors/r2: it now answers 9999.0")

	res, err = op.CallAndRun(ref, "read", []itdos.Value{int32(4)}, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. read(4) = %v — the voter needed only f+1 matching replies;\n", res[0])
	fmt.Println("   the traitor's 9999.0 was masked")

	// Drive the network until every Group Manager element has processed
	// the operator's change_request.
	if err := sys.RunUntil(func() bool {
		for _, mgr := range sys.GMManagers {
			if !mgr.IsExpelled("sensors", 2) {
				return false
			}
		}
		return true
	}, 20_000_000); err != nil {
		log.Fatalf("expulsion did not complete: %v", err)
	}
	ev := op.FaultEvents
	fmt.Printf("4. operator detected the conflicting signed reply and filed a\n")
	fmt.Printf("   change_request with proof (events: %+v)\n", ev)
	fmt.Println("5. the replicated Group Manager re-voted the unmarshalled proof")
	fmt.Println("   values with its marshalling engine and EXPELLED sensors/r2")

	sys.Net.RunFor(100 * time.Millisecond) // let rekey bundles settle
	if id, ok := op.ConnTo("sensors"); ok {
		conn := op.Conn(id)
		fmt.Printf("6. the connection was rekeyed (era %d); member 2 is keyed out: %v\n",
			conn.KeyEra(), conn.Expelled(2))
	}

	res, err = op.CallAndRun(ref, "read", []itdos.Value{int32(6)}, 20_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("7. read(6) = %v — service continues on the remaining 3 replicas\n", res[0])

	fmt.Println("=================================================")
	fmt.Println("availability and integrity held throughout a successful intrusion.")
}
