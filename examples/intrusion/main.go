// Command intrusion walks through the full intrusion-tolerance story of
// the paper: a replica is compromised and starts returning attacker-chosen
// values; the voter masks the bad value; the client detects the conflict,
// files a change_request carrying the signed messages as proof; the
// replicated Group Manager validates the proof with its marshalling
// engine, expels the traitor, and rekeys the communication group so the
// expelled element is cryptographically locked out (paper §3.5–3.6).
//
// Part two closes the loop without any human in it: the same deployment
// runs with the intrusion-tolerance controller enabled, and a stealthier
// adversary — one that lies too rarely to cross the expulsion bar — is
// answered by feedback-shortened key epochs and proactive recovery
// rotating the foothold back to a clean state.
//
// Run with:
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"time"

	"itdos"
	"itdos/internal/fault"
)

const sensorIface = "IDL:examples/Sensor:1.0"

func main() {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(sensorIface).
		Op("read",
			[]itdos.Param{{Name: "channel", Type: itdos.Long}},
			[]itdos.Param{{Name: "value", Type: itdos.Double}}))

	// A deterministic "sensor" service.
	makeServant := func() itdos.Servant {
		return itdos.ServantFunc(func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
			ch := args[0].(int32)
			return []itdos.Value{float64(ch) * 1.5}, nil
		})
	}
	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     7,
		Latency:  itdos.UniformLatency(time.Millisecond, 3*time.Millisecond),
		Registry: reg,
		GM:       itdos.GroupSpec{N: 4, F: 1},
		Domains: []itdos.DomainSpec{{
			Name: "sensors", N: 4, F: 1,
			Profiles: []itdos.Profile{
				itdos.SolarisLike, itdos.LinuxLike, itdos.SolarisLike, itdos.LinuxLike,
			},
			Setup: func(member int, a *itdos.Adapter) error {
				return a.Register("array-1", sensorIface, makeServant())
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "operator"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	ref := itdos.ObjectRef{Domain: "sensors", ObjectKey: "array-1", Interface: sensorIface}
	op := sys.Client("operator")

	fmt.Println("ITDOS intrusion tolerance walkthrough (f=1, n=4)")
	fmt.Println("=================================================")

	res, err := op.CallAndRun(ref, "read", []itdos.Value{int32(4)}, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. healthy read(4) = %v — all four replicas agree\n", res[0])

	// The adversary compromises replica 2: it now reports attacker-chosen
	// readings (an arbitrary/Byzantine value fault).
	evil := itdos.ServantFunc(func(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
		return []itdos.Value{9999.0}, nil
	})
	if err := sys.Domain("sensors").Elements[2].Adapter.Register("array-1", sensorIface, evil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. ADVERSARY compromises sensors/r2: it now answers 9999.0")

	res, err = op.CallAndRun(ref, "read", []itdos.Value{int32(4)}, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. read(4) = %v — the voter needed only f+1 matching replies;\n", res[0])
	fmt.Println("   the traitor's 9999.0 was masked")

	// Drive the network until every Group Manager element has processed
	// the operator's change_request.
	if err := sys.RunUntil(func() bool {
		for _, mgr := range sys.GMManagers {
			if !mgr.IsExpelled("sensors", 2) {
				return false
			}
		}
		return true
	}, 20_000_000); err != nil {
		log.Fatalf("expulsion did not complete: %v", err)
	}
	ev := op.FaultEvents
	fmt.Printf("4. operator detected the conflicting signed reply and filed a\n")
	fmt.Printf("   change_request with proof (events: %+v)\n", ev)
	fmt.Println("5. the replicated Group Manager re-voted the unmarshalled proof")
	fmt.Println("   values with its marshalling engine and EXPELLED sensors/r2")

	sys.Net.RunFor(100 * time.Millisecond) // let rekey bundles settle
	if id, ok := op.ConnTo("sensors"); ok {
		conn := op.Conn(id)
		fmt.Printf("6. the connection was rekeyed (era %d); member 2 is keyed out: %v\n",
			conn.KeyEra(), conn.Expelled(2))
	}

	res, err = op.CallAndRun(ref, "read", []itdos.Value{int32(6)}, 20_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("7. read(6) = %v — service continues on the remaining 3 replicas\n", res[0])

	fmt.Println("=================================================")
	fmt.Println("availability and integrity held throughout a successful intrusion.")
	fmt.Println()
	automatedResponse(reg, makeServant)
}

// automatedResponse replays the intrusion with the controller in charge: a
// slow compromise that never gives the client a clean f+2 proof is met
// with feedback rekeys and proactive recovery instead of expulsion.
func automatedResponse(reg *itdos.Registry, makeServant func() itdos.Servant) {
	// Replica 1 runs behind a fault.Switch so "restart from a clean code
	// image" (proactive recovery) can also discard the compromise itself.
	sw := fault.NewSwitch()
	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     11,
		Latency:  itdos.UniformLatency(time.Millisecond, 3*time.Millisecond),
		Registry: reg,
		GM:       itdos.GroupSpec{N: 4, F: 1},
		ITC: &itdos.ITCConfig{
			HalfLife:          time.Second,
			BaseRekeyInterval: 4 * time.Second,
			RecoveryInterval:  1200 * time.Millisecond,
		},
		// Recovery completes on checkpoint-driven state transfer; a short
		// checkpoint interval keeps that brisk at walkthrough call volumes.
		CheckpointInterval: 4,
		Domains: []itdos.DomainSpec{{
			Name: "sensors", N: 4, F: 1,
			Profiles: []itdos.Profile{
				itdos.SolarisLike, itdos.LinuxLike, itdos.SolarisLike, itdos.LinuxLike,
			},
			Setup: func(member int, a *itdos.Adapter) error {
				s := makeServant()
				if member == 1 {
					s = sw.Wrap(s)
				}
				return a.Register("array-1", sensorIface, s)
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "operator"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	ref := itdos.ObjectRef{Domain: "sensors", ObjectKey: "array-1", Interface: sensorIface}
	op := sys.Client("operator")
	ctrl := sys.ITC()

	fmt.Println("part two: the automated intrusion-response loop (-itc)")
	fmt.Println("=================================================")

	read := func() {
		if _, err := op.CallAndRun(ref, "read", []itdos.Value{int32(4)}, 50_000_000); err != nil {
			log.Fatal(err)
		}
		sys.Net.RunFor(400 * time.Millisecond)
	}
	era := func() uint64 {
		if id, ok := op.ConnTo("sensors"); ok {
			return op.Conn(id).KeyEra()
		}
		return 0
	}

	for i := 0; i < 3; i++ {
		read()
	}
	fmt.Printf("1. healthy cruise: key era %d, suspicion(r1) = %.2f\n",
		era(), ctrl.Suspicion("sensors", 1))

	// A stealthy adversary: replica 1 lies on every fifth read — often
	// enough to leave voter fault reports, but spaced so its decayed
	// suspicion never reaches the expulsion threshold.
	sw.Compromise(fault.IntermittentLyingServant(makeServant(), 5, 9999.0))
	fmt.Println("2. ADVERSARY gains a quiet foothold on sensors/r1: every fifth")
	fmt.Println("   reading is attacker-chosen (voting masks each one)")

	peak := 0.0
	track := func() {
		read()
		if s := ctrl.Suspicion("sensors", 1); s > peak {
			peak = s
		}
	}
	for i := 0; i < 8; i++ {
		track()
	}
	fmt.Printf("3. the controller's suspicion for r1 peaked at %.2f — under the\n", peak)
	fmt.Println("   1.5 expulsion bar, so no accusation is filed; instead the")
	fmt.Printf("   feedback loop shortened the key epoch (era now %d)\n", era())

	for i := 0; i < 12 && ctrl.Recoveries("sensors", 1) == 0; i++ {
		track()
	}
	if ctrl.Recoveries("sensors", 1) == 0 {
		log.Fatal("proactive recovery never reached r1")
	}
	// The rotation restarted r1 from a clean code image: the foothold is
	// gone, and the replica resynced its state from its peers.
	sw.Restore()
	fmt.Println("4. proactive recovery rotated r1 through a restart-from-clean-state")
	fmt.Println("   + state resync: the foothold is evicted without an expulsion")

	for i := 0; i < 4; i++ {
		read()
	}
	fmt.Printf("5. suspicion decays toward zero (now %.2f); accused: %v; the\n",
		ctrl.Suspicion("sensors", 1), ctrl.Accused("sensors", 1))
	fmt.Println("   domain still fields all four replicas")

	fmt.Println("=================================================")
	fmt.Println("the response loop handled a sub-threshold intrusion autonomously.")
}
