// Command quickstart demonstrates the nominal ITDOS configuration of the
// paper's Figure 1: a singleton client invoking a service that is actively
// replicated over 3f+1 elements, with the connection established through
// the replicated Group Manager and every reply voted.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"itdos"
)

const bankIface = "IDL:examples/Bank:1.0"

// bankServant is a deterministic bank account object, the kind of
// mission-critical service the paper's introduction motivates.
type bankServant struct {
	balance int64
}

func (b *bankServant) Invoke(ctx *itdos.CallContext, op string, args []itdos.Value) ([]itdos.Value, error) {
	switch op {
	case "deposit":
		b.balance += int64(args[0].(int32))
		return []itdos.Value{b.balance}, nil
	case "withdraw":
		amount := int64(args[0].(int32))
		if amount > b.balance {
			return nil, &itdos.UserException{Name: "IDL:examples/Bank/Overdrawn:1.0"}
		}
		b.balance -= amount
		return []itdos.Value{b.balance}, nil
	case "balance":
		return []itdos.Value{b.balance}, nil
	}
	return nil, &itdos.UserException{Name: "IDL:examples/Bank/BadOp:1.0"}
}

func main() {
	reg := itdos.NewRegistry()
	reg.Register(itdos.NewInterface(bankIface).
		Op("deposit",
			[]itdos.Param{{Name: "amount", Type: itdos.Long}},
			[]itdos.Param{{Name: "balance", Type: itdos.LongLong}}).
		Op("withdraw",
			[]itdos.Param{{Name: "amount", Type: itdos.Long}},
			[]itdos.Param{{Name: "balance", Type: itdos.LongLong}}).
		Op("balance",
			nil,
			[]itdos.Param{{Name: "balance", Type: itdos.LongLong}}))

	// Four replicas tolerate f=1 Byzantine failure; the platforms are
	// deliberately heterogeneous (big- and little-endian).
	sys, err := itdos.NewSystem(itdos.Config{
		Seed:     2002,
		Latency:  itdos.UniformLatency(time.Millisecond, 4*time.Millisecond),
		Registry: reg,
		GM:       itdos.GroupSpec{N: 4, F: 1},
		Domains: []itdos.DomainSpec{{
			Name: "bank", N: 4, F: 1,
			Profiles: []itdos.Profile{
				itdos.SolarisLike, itdos.LinuxLike, itdos.SolarisLike, itdos.LinuxLike,
			},
			Setup: func(member int, a *itdos.Adapter) error {
				return a.Register("account-42", bankIface, &bankServant{})
			},
		}},
		Clients: []itdos.ClientSpec{{Name: "alice"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	ref := itdos.ObjectRef{Domain: "bank", ObjectKey: "account-42", Interface: bankIface}
	alice := sys.Client("alice")

	fmt.Println("ITDOS quickstart: singleton client -> 4-way replicated bank (f=1)")
	fmt.Println("-----------------------------------------------------------------")

	call := func(op string, args ...itdos.Value) {
		before := sys.Net.Stats()
		start := sys.Net.Now()
		res, err := alice.CallAndRun(ref, op, args, 10_000_000)
		elapsed := sys.Net.Now() - start
		msgs := sys.Net.Stats().MessagesSent - before.MessagesSent
		if err != nil {
			fmt.Printf("%-28s -> error: %v   (%d msgs, %v simulated)\n",
				fmt.Sprintf("%s(%v)", op, args), err, msgs, elapsed)
			return
		}
		fmt.Printf("%-28s -> balance %v   (%d msgs, %v simulated)\n",
			fmt.Sprintf("%s(%v)", op, args), res[0], msgs, elapsed)
	}

	call("deposit", itdos.Value(int32(100)))
	call("deposit", itdos.Value(int32(250)))
	call("withdraw", itdos.Value(int32(90)))
	call("balance")
	call("withdraw", itdos.Value(int32(10_000))) // raises Overdrawn

	st := sys.Net.Stats()
	fmt.Println("-----------------------------------------------------------------")
	fmt.Printf("totals: %d messages, %d bytes on the simulated wire\n",
		st.MessagesSent, st.BytesSent)
	fmt.Println("every reply above was voted from f+1 matching copies produced by")
	fmt.Println("replicas marshalling in different byte orders (Figure 1 flow).")
}
